//! The cluster configuration manager ("the owner of all cluster
//! configurations", §3.6).
//!
//! The coordinator is the consensus-replicated control plane the paper
//! assumes as given (Chubby/ZooKeeper-class); here it is a single in-process
//! authority. It owns the partition map, witness-list versions, fencing
//! epochs and RIFL leases, and orchestrates the three reconfigurations of
//! §3.6 plus master crash recovery:
//!
//! * **master recovery** — fence the crashed master's epoch on all backups,
//!   have the new master restore + replay (§4.6), swap the partition entry;
//! * **witness replacement** — start a fresh instance, tell the master (which
//!   syncs before acknowledging), bump the witness-list version;
//! * **migration** — split a partition and move the upper half.
//!
//! The [`Autoscaler`] drives the migration path from load instead of an
//! operator: it polls every partition master's [`LoadStats`] snapshot, and
//! when one saturates (deep speculative queue while executing a healthy
//! update rate) it splits that partition at the hotkey-mass median and
//! migrates the upper half onto a spare server — all while clients keep
//! running (their `NotOwner` retries re-route against the re-published map,
//! whose version increases monotonically: once a coordinator mutation
//! shrinks an owner's range, every republication carries a strictly larger
//! version, so a client can never install a stale map that double-owns a
//! hash).
//!
//! Control-plane actions use direct [`CurpServer`] handles (coordinator and
//! servers share a process in this implementation); the data plane runs over
//! the transport.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use curp_proto::cluster::{ClusterConfig, HashRange, LoadStats, PartitionConfig};
use curp_proto::lockrank;
use curp_proto::message::{Request, Response};
use curp_proto::types::{ClientId, Epoch, MasterId, ServerId, WitnessListVersion};
use curp_rifl::LeaseManager;
use curp_storage::IntentLog;
use curp_transport::rpc::{BoxFuture, RpcClient, RpcHandler};
use parking_lot::Mutex;

use crate::master::{futures_join_all, Master, MasterConfig, MasterSeed};
use crate::server::CurpServer;
use crate::snapshot::Snapshot;

/// Factory producing an [`RpcClient`] whose calls originate from a given
/// server id (masters send syncs/gcs *as themselves*).
pub type ClientFactory = Box<dyn Fn(ServerId) -> Arc<dyn RpcClient> + Send + Sync>;

struct CoordState {
    config: ClusterConfig,
    leases: LeaseManager,
    next_master: u64,
}

// ---- orchestration plans (DESIGN invariant 11) ----------------------------
//
// Every multi-step reconfiguration is described by a durable *plan*: the
// begin record carries everything a restarted coordinator needs to finish
// (or abandon) the job, and each step is journaled *before* it executes.
// All steps are idempotent under re-issue, so resume never needs to know
// how far the crashed incarnation got — it re-drives the whole plan from
// the current cluster state.

/// Durable description of a `recover_master` plan.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RecoverSpec {
    crashed: MasterId,
    new_srv: ServerId,
    /// Allocated once at plan begin; every resume attempt reuses it.
    new_id: MasterId,
    /// The partition's epoch when the plan was begun; attempts fence at
    /// strictly higher epochs.
    base_epoch: Epoch,
    backups: Vec<ServerId>,
    witnesses: Vec<ServerId>,
    wl_version: WitnessListVersion,
    range: HashRange,
}

/// Durable description of a `migrate` plan.
#[derive(Debug, Clone, PartialEq, Eq)]
struct MigrateSpec {
    source: MasterId,
    split_at: u64,
    target_srv: ServerId,
    new_id: MasterId,
    target_backups: Vec<ServerId>,
    target_witnesses: Vec<ServerId>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum PlanSpec {
    Recover(RecoverSpec),
    Migrate(MigrateSpec),
}

/// One orchestration step, journaled before execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanStep {
    /// A (re-)attempt of a recover plan fencing at this epoch. Recorded so
    /// a later resume picks a strictly higher epoch than *any* attempt,
    /// fencing out half-installed masters from abandoned ones.
    Attempt(Epoch),
    /// Fence the crashed incarnation's epoch on every backup.
    Fence,
    /// Reset-start witness instances for the plan's new master id.
    WitnessReset,
    /// Restore + replay + reinstall (`Master::recover`) and install the
    /// new master on its server.
    Restore,
    /// Publish the new configuration (the commit point of a plan).
    Publish,
    /// Destroy the superseded incarnation's state (witness instances,
    /// backup replicas). Strictly after publish: destroying the only
    /// durable copy before the new map exists would turn a crash here
    /// into data loss.
    Cleanup,
    /// Drain + cut the source master (`migrate_out`).
    Drain,
    /// Reset-start witness instances for the migration target.
    TargetWitnesses,
    /// Install the migrated snapshot on the target backups + target server.
    TargetInstall,
    /// Reset the source's witnesses and install its bumped witness list.
    SourceRefit(WitnessListVersion),
    /// The plan cannot proceed (its incarnation is gone); remnants of the
    /// never-published master are being destroyed.
    Abort,
}

const SPEC_RECOVER: u8 = 1;
const SPEC_MIGRATE: u8 = 2;

fn put_u64(v: &mut Vec<u8>, x: u64) {
    v.extend_from_slice(&x.to_le_bytes());
}

fn put_ids(v: &mut Vec<u8>, ids: &[ServerId]) {
    put_u64(v, ids.len() as u64);
    for id in ids {
        put_u64(v, id.0);
    }
}

struct Cursor<'a>(&'a [u8]);

impl Cursor<'_> {
    fn u64(&mut self) -> Option<u64> {
        if self.0.len() < 8 {
            return None;
        }
        let (head, rest) = self.0.split_at(8);
        self.0 = rest;
        Some(u64::from_le_bytes(head.try_into().ok()?))
    }

    fn ids(&mut self) -> Option<Vec<ServerId>> {
        let n = self.u64()?;
        (0..n).map(|_| self.u64().map(ServerId)).collect()
    }
}

impl PlanSpec {
    fn encode(&self) -> Vec<u8> {
        let mut v = Vec::new();
        match self {
            PlanSpec::Recover(s) => {
                v.push(SPEC_RECOVER);
                put_u64(&mut v, s.crashed.0);
                put_u64(&mut v, s.new_srv.0);
                put_u64(&mut v, s.new_id.0);
                put_u64(&mut v, s.base_epoch.0);
                put_u64(&mut v, s.wl_version.0);
                put_u64(&mut v, s.range.start);
                put_u64(&mut v, s.range.end);
                put_ids(&mut v, &s.backups);
                put_ids(&mut v, &s.witnesses);
            }
            PlanSpec::Migrate(s) => {
                v.push(SPEC_MIGRATE);
                put_u64(&mut v, s.source.0);
                put_u64(&mut v, s.split_at);
                put_u64(&mut v, s.target_srv.0);
                put_u64(&mut v, s.new_id.0);
                put_ids(&mut v, &s.target_backups);
                put_ids(&mut v, &s.target_witnesses);
            }
        }
        v
    }

    fn decode(raw: &[u8]) -> Option<PlanSpec> {
        let (&tag, rest) = raw.split_first()?;
        let mut c = Cursor(rest);
        match tag {
            SPEC_RECOVER => Some(PlanSpec::Recover(RecoverSpec {
                crashed: MasterId(c.u64()?),
                new_srv: ServerId(c.u64()?),
                new_id: MasterId(c.u64()?),
                base_epoch: Epoch(c.u64()?),
                wl_version: WitnessListVersion(c.u64()?),
                range: HashRange { start: c.u64()?, end: c.u64()? },
                backups: c.ids()?,
                witnesses: c.ids()?,
            })),
            SPEC_MIGRATE => Some(PlanSpec::Migrate(MigrateSpec {
                source: MasterId(c.u64()?),
                split_at: c.u64()?,
                target_srv: ServerId(c.u64()?),
                new_id: MasterId(c.u64()?),
                target_backups: c.ids()?,
                target_witnesses: c.ids()?,
            })),
            _ => None,
        }
    }
}

impl PlanStep {
    fn encode(&self) -> Vec<u8> {
        let (tag, arg) = match self {
            PlanStep::Attempt(e) => (1u8, e.0),
            PlanStep::Fence => (2, 0),
            PlanStep::WitnessReset => (3, 0),
            PlanStep::Restore => (4, 0),
            PlanStep::Publish => (5, 0),
            PlanStep::Cleanup => (6, 0),
            PlanStep::Drain => (7, 0),
            PlanStep::TargetWitnesses => (8, 0),
            PlanStep::TargetInstall => (9, 0),
            PlanStep::SourceRefit(v) => (10, v.0),
            PlanStep::Abort => (11, 0),
        };
        let mut v = vec![tag];
        put_u64(&mut v, arg);
        v
    }

    fn decode(raw: &[u8]) -> Option<PlanStep> {
        let (&tag, rest) = raw.split_first()?;
        let arg = Cursor(rest).u64()?;
        Some(match tag {
            1 => PlanStep::Attempt(Epoch(arg)),
            2 => PlanStep::Fence,
            3 => PlanStep::WitnessReset,
            4 => PlanStep::Restore,
            5 => PlanStep::Publish,
            6 => PlanStep::Cleanup,
            7 => PlanStep::Drain,
            8 => PlanStep::TargetWitnesses,
            9 => PlanStep::TargetInstall,
            10 => PlanStep::SourceRefit(WitnessListVersion(arg)),
            11 => PlanStep::Abort,
            _ => return None,
        })
    }
}

/// An open plan: its durable spec plus the steps journaled so far.
#[derive(Debug, Clone)]
struct Plan {
    id: u64,
    spec: PlanSpec,
    steps: Vec<PlanStep>,
}

/// The plan registry: an in-memory mirror of the open plans, over an
/// optional on-disk [`IntentLog`]. Every mutation hits the log (durably)
/// *before* the mirror, and both happen without an intervening await — the
/// mirror can never run ahead of the disk, and a cancelled orchestration
/// future can never leave them out of sync.
struct PlanJournal {
    log: Option<IntentLog>,
    open: Vec<Plan>,
    /// Plan-id source when no log is attached (memory-only clusters).
    next_mem_id: u64,
}

impl PlanJournal {
    fn begin(&mut self, spec: &PlanSpec) -> Result<u64, String> {
        let id = match &mut self.log {
            Some(log) => log.begin(&spec.encode()).map_err(|e| format!("intent log begin: {e}"))?,
            None => {
                self.next_mem_id += 1;
                self.next_mem_id
            }
        };
        self.open.push(Plan { id, spec: spec.clone(), steps: Vec::new() });
        Ok(id)
    }

    fn step(&mut self, id: u64, step: PlanStep) -> Result<(), String> {
        if let Some(log) = &mut self.log {
            log.step(id, &step.encode()).map_err(|e| format!("intent log step: {e}"))?;
        }
        if let Some(p) = self.open.iter_mut().find(|p| p.id == id) {
            p.steps.push(step);
        }
        Ok(())
    }

    fn close(&mut self, id: u64) -> Result<(), String> {
        if let Some(log) = &mut self.log {
            log.close(id).map_err(|e| format!("intent log close: {e}"))?;
        }
        self.open.retain(|p| p.id != id);
        Ok(())
    }
}

/// The coordinator.
pub struct Coordinator {
    client_for: ClientFactory,
    master_cfg: MasterConfig,
    st: Mutex<CoordState>,
    servers: Mutex<HashMap<ServerId, Arc<CurpServer>>>,
    plans: Mutex<PlanJournal>,
    epoch0: tokio::time::Instant,
}

impl Coordinator {
    /// Creates a coordinator. `client_for` builds per-server RPC clients;
    /// `master_cfg` is the template for every master it creates.
    pub fn new(
        client_for: ClientFactory,
        master_cfg: MasterConfig,
        lease_ttl_ms: u64,
    ) -> Arc<Self> {
        Self::build(client_for, master_cfg, lease_ttl_ms, None)
    }

    /// Creates a coordinator whose orchestration plans are write-ahead
    /// journaled to `intent_path` (see [`curp_storage::IntentLog`]): a
    /// coordinator re-created over the same path resumes-or-aborts whatever
    /// reconfiguration its predecessor died inside of.
    pub fn new_durable(
        client_for: ClientFactory,
        master_cfg: MasterConfig,
        lease_ttl_ms: u64,
        intent_path: &Path,
    ) -> std::io::Result<Arc<Self>> {
        let (log, open) = IntentLog::open(intent_path)?;
        let coord = Self::build(client_for, master_cfg, lease_ttl_ms, Some(log));
        coord.install_loaded_plans(open);
        Ok(coord)
    }

    fn build(
        client_for: ClientFactory,
        master_cfg: MasterConfig,
        lease_ttl_ms: u64,
        log: Option<IntentLog>,
    ) -> Arc<Self> {
        Arc::new(Coordinator {
            client_for,
            master_cfg,
            st: Mutex::ranked(
                lockrank::COORD_STATE,
                "core.coordinator.st",
                CoordState {
                    config: ClusterConfig { partitions: Vec::new(), version: 1 },
                    leases: LeaseManager::new(lease_ttl_ms),
                    next_master: 1,
                },
            ),
            servers: Mutex::ranked(
                lockrank::COORD_SERVERS,
                "core.coordinator.servers",
                HashMap::new(),
            ),
            plans: Mutex::ranked(
                lockrank::COORD_PLANS,
                "core.coordinator.plans",
                PlanJournal { log, open: Vec::new(), next_mem_id: 0 },
            ),
            epoch0: tokio::time::Instant::now(),
        })
    }

    /// Rebuilds the in-memory plan mirror from disk — the cold-boot path: a
    /// coordinator process restarted after a crash (or the whole-cluster
    /// power loss) reads back the plans its dead incarnation left open.
    /// Returns how many open plans were found. No-op (0) without a journal.
    pub fn reload_intent(&self) -> std::io::Result<usize> {
        let path = match &self.plans.lock().log {
            Some(log) => log.path().to_path_buf(),
            None => return Ok(0),
        };
        let (log, open) = IntentLog::open(&path)?;
        {
            let mut plans = self.plans.lock();
            plans.log = Some(log);
            plans.open.clear();
        }
        let n = open.len();
        self.install_loaded_plans(open);
        Ok(n)
    }

    fn install_loaded_plans(&self, open: Vec<curp_storage::OpenPlan>) {
        let mut plans = self.plans.lock();
        let mut max_master = 0u64;
        for p in open {
            let Some(spec) = PlanSpec::decode(&p.begin) else { continue };
            let new_id = match &spec {
                PlanSpec::Recover(s) => s.new_id,
                PlanSpec::Migrate(s) => s.new_id,
            };
            max_master = max_master.max(new_id.0);
            let steps = p.steps.iter().filter_map(|s| PlanStep::decode(s)).collect();
            plans.open.push(Plan { id: p.id, spec, steps });
        }
        drop(plans);
        // Master ids allocated by a dead incarnation must never be reused.
        let mut st = self.st.lock();
        st.next_master = st.next_master.max(max_master + 1);
    }

    /// Open (in-flight, not yet resolved) orchestration plans.
    pub fn open_plan_count(&self) -> usize {
        self.plans.lock().open.len()
    }

    /// Fault injection for crash-at-step-boundary tests: the intent journal
    /// fails (without writing) after `n` more records, which aborts the
    /// in-flight orchestration exactly at that step boundary — the same
    /// stopping points a real coordinator crash can produce. `None` disarms.
    /// Returns false if this coordinator has no journal.
    pub fn set_intent_fail_after(&self, n: Option<u64>) -> bool {
        match &mut self.plans.lock().log {
            Some(log) => {
                log.set_fail_after(n);
                true
            }
            None => false,
        }
    }

    fn plan_begin(&self, spec: &PlanSpec) -> Result<u64, String> {
        self.plans.lock().begin(spec)
    }

    fn plan_step(&self, id: u64, step: PlanStep) -> Result<(), String> {
        self.plans.lock().step(id, step)
    }

    fn plan_close(&self, id: u64) -> Result<(), String> {
        self.plans.lock().close(id)
    }

    fn find_open_plan(&self, pred: impl Fn(&PlanSpec) -> bool) -> Option<Plan> {
        self.plans.lock().open.iter().find(|p| pred(&p.spec)).cloned()
    }

    fn now_ms(&self) -> u64 {
        self.epoch0.elapsed().as_millis() as u64
    }

    /// Registers a server handle for control-plane use.
    pub fn register_server(&self, server: Arc<CurpServer>) {
        self.servers.lock().insert(server.id(), server);
    }

    fn server(&self, id: ServerId) -> Result<Arc<CurpServer>, String> {
        self.servers.lock().get(&id).cloned().ok_or_else(|| format!("unknown server {id}"))
    }

    /// Current configuration snapshot.
    pub fn config(&self) -> ClusterConfig {
        self.st.lock().config.clone()
    }

    /// Creates a new partition: installs a master on `master_srv`, starts
    /// witness instances, and publishes the configuration.
    pub async fn create_partition(
        &self,
        master_srv: ServerId,
        backups: Vec<ServerId>,
        witnesses: Vec<ServerId>,
        range: HashRange,
    ) -> Result<MasterId, String> {
        let master_id = {
            let mut st = self.st.lock();
            let id = MasterId(st.next_master);
            st.next_master += 1;
            id
        };
        let wl_version = WitnessListVersion(1);
        // Start witness instances before the master serves anything.
        for &w in &witnesses {
            let rsp =
                (self.client_for)(master_srv).call(w, Request::WitnessStart { master_id }).await;
            match rsp {
                Ok(Response::WitnessStarted { ok: true }) => {}
                other => return Err(format!("witness start on {w} failed: {other:?}")),
            }
        }
        let server = self.server(master_srv)?;
        let master = Master::new(
            MasterSeed {
                id: master_id,
                epoch: curp_proto::types::Epoch(1),
                backups: backups.clone(),
                witnesses: witnesses.clone(),
                wl_version,
                range,
            },
            self.master_cfg.clone(),
            (self.client_for)(master_srv),
        );
        master.spawn_syncer();
        server.set_master(Arc::clone(&master));

        let mut st = self.st.lock();
        st.config.partitions.push(PartitionConfig {
            master_id,
            master: master_srv,
            backups,
            witnesses,
            witness_list_version: wl_version,
            epoch: curp_proto::types::Epoch(1),
            range,
        });
        st.config.version += 1;
        Ok(master_id)
    }

    /// Recovers a crashed master onto `new_srv` (§3.3, §4.6): fences the old
    /// epoch on every backup, restores from the first reachable backup,
    /// replays from the first reachable witness, starts fresh witness
    /// instances for the new master id, and publishes the new configuration.
    ///
    /// Re-entrant and crash-safe: the whole sequence runs under a journaled
    /// plan. If a matching plan is already open (a previous call crashed or
    /// was cancelled mid-flight), this call *resumes* it instead of starting
    /// over — reusing the recorded new master id and fencing at a strictly
    /// higher epoch than any recorded attempt, so a half-installed master
    /// from an abandoned attempt can never sync again.
    pub async fn recover_master(
        &self,
        crashed: MasterId,
        new_srv: ServerId,
    ) -> Result<MasterId, String> {
        if let Some(plan) = self.find_open_plan(
            |s| matches!(s, PlanSpec::Recover(r) if r.crashed == crashed && r.new_srv == new_srv),
        ) {
            return self.drive_recover(plan).await;
        }
        let part = self
            .st
            .lock()
            .config
            .partition_by_master(crashed)
            .cloned()
            .ok_or_else(|| format!("unknown master {crashed:?}"))?;
        let new_id = {
            let mut st = self.st.lock();
            let id = MasterId(st.next_master);
            st.next_master += 1;
            id
        };
        let spec = RecoverSpec {
            crashed,
            new_srv,
            new_id,
            base_epoch: part.epoch,
            backups: part.backups.clone(),
            witnesses: part.witnesses.clone(),
            wl_version: part.witness_list_version,
            range: part.range,
        };
        let plan_id = self.plan_begin(&PlanSpec::Recover(spec.clone()))?;
        self.drive_recover(Plan { id: plan_id, spec: PlanSpec::Recover(spec), steps: Vec::new() })
            .await
    }

    /// Resolves a recover plan against the current cluster state: finish the
    /// cleanup if it already published, re-drive the whole attempt if the
    /// crashed incarnation is still in the map, abort if the partition was
    /// recovered by someone else in the meantime.
    async fn drive_recover(&self, plan: Plan) -> Result<MasterId, String> {
        let PlanSpec::Recover(spec) = &plan.spec else {
            return Err("not a recover plan".into());
        };
        let cfg = self.st.lock().config.clone();
        if cfg.partition_by_master(spec.new_id).is_some() {
            // Crashed after the commit point: only the cleanup can be
            // outstanding. Re-issue it (idempotent) and close.
            self.plan_step(plan.id, PlanStep::Cleanup)?;
            self.recover_cleanup(spec).await;
            self.plan_close(plan.id)?;
            return Ok(spec.new_id);
        }
        if cfg.partition_by_master(spec.crashed).is_none() {
            // Neither the crashed nor the new incarnation is in the map: a
            // different plan recovered this partition. Destroy this plan's
            // never-published remnants and close.
            self.plan_step(plan.id, PlanStep::Abort)?;
            self.abort_new_master_remnants(
                spec.new_id,
                spec.new_srv,
                &spec.backups,
                &spec.witnesses,
            )
            .await;
            self.plan_close(plan.id)?;
            return Err(format!(
                "recover plan for {:?} aborted: partition already recovered elsewhere",
                spec.crashed
            ));
        }
        // Fence every attempt at a strictly higher epoch than any recorded
        // one: an abandoned attempt's master (installed but never published)
        // is fenced out by the backups the moment this attempt fences.
        let max_attempted = plan
            .steps
            .iter()
            .filter_map(|s| match s {
                PlanStep::Attempt(e) => Some(*e),
                _ => None,
            })
            .max()
            .unwrap_or(spec.base_epoch);
        let attempt_epoch = Epoch(max_attempted.0.max(spec.base_epoch.0) + 1);
        self.recover_attempt(plan.id, spec, attempt_epoch).await?;
        self.plan_close(plan.id)?;
        Ok(spec.new_id)
    }

    /// One full recovery attempt under plan `plan_id`. Every step is
    /// journaled before it executes and is idempotent under re-issue.
    async fn recover_attempt(
        &self,
        plan_id: u64,
        spec: &RecoverSpec,
        attempt_epoch: Epoch,
    ) -> Result<(), String> {
        let rpc = (self.client_for)(spec.new_srv);
        self.plan_step(plan_id, PlanStep::Attempt(attempt_epoch))?;

        // Fence the zombie (§4.7). Every backup must be fenced before we
        // read state, or a zombie sync could slip in afterwards. Idempotent:
        // `BackupSetEpoch` never lowers an epoch.
        self.plan_step(plan_id, PlanStep::Fence)?;
        for &b in &spec.backups {
            match rpc
                .call(b, Request::BackupSetEpoch { master_id: spec.crashed, epoch: attempt_epoch })
                .await
            {
                Ok(Response::EpochSet) => {}
                other => return Err(format!("fencing backup {b} failed: {other:?}")),
            }
        }

        // Witness instances for the new master id, on the same servers
        // ("resetting witnesses for the new master or assigning a new set").
        // Reset-start (end + start) rather than bare start: `WitnessStart`
        // refuses an existing instance, and a resumed plan may find one left
        // by the crashed attempt. Safe before publish — no client can have
        // recorded under a master id that was never published.
        self.plan_step(plan_id, PlanStep::WitnessReset)?;
        for &w in &spec.witnesses {
            let _ = rpc.call(w, Request::WitnessEnd { master_id: spec.new_id }).await;
            match rpc.call(w, Request::WitnessStart { master_id: spec.new_id }).await {
                Ok(Response::WitnessStarted { ok: true }) => {}
                other => return Err(format!("witness start on {w} failed: {other:?}")),
            }
        }

        // Pick the first reachable backup/witness pair as the restore/replay
        // sources; the new master's getRecoveryData freezes the witness
        // (§4.6). "The new master picks any available witness. If none ...
        // are reachable, [it] must wait." `Master::recover` is re-runnable
        // end to end: fetch and replay are reads, and the final
        // `BackupInstall` re-installs idempotently at an equal epoch.
        self.plan_step(plan_id, PlanStep::Restore)?;
        let mut recovered: Result<Arc<Master>, String> = Err("no backup reachable".into());
        'outer: for &backup_src in &spec.backups {
            for &witness_src in &spec.witnesses {
                let seed = MasterSeed {
                    id: spec.new_id,
                    epoch: attempt_epoch,
                    backups: spec.backups.clone(),
                    witnesses: spec.witnesses.clone(),
                    wl_version: spec.wl_version.next(),
                    range: spec.range,
                };
                match Master::recover(
                    seed,
                    self.master_cfg.clone(),
                    Arc::clone(&rpc),
                    spec.crashed,
                    backup_src,
                    witness_src,
                )
                .await
                {
                    Ok(m) => {
                        recovered = Ok(m);
                        break 'outer;
                    }
                    Err(e) => recovered = Err(e),
                }
            }
        }
        let master = recovered?;
        master.spawn_syncer();
        // Replacing seals any half-installed master an abandoned attempt
        // left on this server (see `CurpServer::set_master`).
        self.server(spec.new_srv)?.set_master(Arc::clone(&master));

        // Commit point: publish the new map. In-memory mutation, no await
        // between the journal record and the swap.
        self.plan_step(plan_id, PlanStep::Publish)?;
        {
            let mut st = self.st.lock();
            if let Some(p) = st.config.partitions.iter_mut().find(|p| p.master_id == spec.crashed) {
                p.master_id = spec.new_id;
                p.master = spec.new_srv;
                p.epoch = attempt_epoch;
                p.witness_list_version = spec.wl_version.next();
            }
            st.config.version += 1;
        }

        // Destroy the crashed incarnation's state — strictly *after*
        // publish. Before the new map exists, the old witness instances and
        // backup replicas are the only durable copy of the partition; a
        // crash between destroying them and publishing would leave a cold
        // resume with nothing to recover from.
        self.plan_step(plan_id, PlanStep::Cleanup)?;
        self.recover_cleanup(spec).await;
        Ok(())
    }

    /// Post-publish teardown of the crashed incarnation (idempotent).
    async fn recover_cleanup(&self, spec: &RecoverSpec) {
        let rpc = (self.client_for)(spec.new_srv);
        let ends = spec
            .witnesses
            .iter()
            .map(|&w| rpc.call(w, Request::WitnessEnd { master_id: spec.crashed }));
        let _ = futures_join_all(ends).await;
        // Drop the crashed master's replicas (and, on durable backups, their
        // on-disk AOF/snapshot). Safe here: the new master's install was
        // acknowledged by every backup before publish, so the old files can
        // never be needed again. A dropped replica leaves its fencing
        // tombstone behind (invariant 7/8).
        for &b in &spec.backups {
            if let Ok(srv) = self.server(b) {
                srv.backup().drop_replica(spec.crashed);
            }
        }
    }

    /// Destroys everything an unpublished plan may have created under
    /// `new_id` (best effort, idempotent): the master instance, its witness
    /// instances, and its backup replicas. Only ever called for ids that no
    /// published map has carried, so no client can be using them.
    async fn abort_new_master_remnants(
        &self,
        new_id: MasterId,
        new_srv: ServerId,
        backups: &[ServerId],
        witnesses: &[ServerId],
    ) {
        if let Ok(srv) = self.server(new_srv) {
            if let Some(m) = srv.master() {
                if m.id() == new_id {
                    m.seal();
                }
            }
        }
        let rpc = (self.client_for)(new_srv);
        let ends =
            witnesses.iter().map(|&w| rpc.call(w, Request::WitnessEnd { master_id: new_id }));
        let _ = futures_join_all(ends).await;
        for &b in backups {
            if let Ok(srv) = self.server(b) {
                srv.backup().drop_replica(new_id);
            }
        }
    }

    /// Rebuilds the whole cluster after a power loss (§5.4's crash model
    /// applied to every server at once).
    ///
    /// Precondition: every server process has been restarted from its
    /// on-disk state (`CurpServer::new_durable` over the same data
    /// directories — backups replay their AOFs, witnesses their journals)
    /// and re-registered with this coordinator and the transport. The
    /// coordinator itself models the consensus-replicated configuration
    /// store the paper assumes as given, so its partition map survives.
    ///
    /// Each partition then runs the standard crash recovery (§4.6) with the
    /// *whole cluster* as the casualty: fence the dead incarnation's epoch,
    /// restore the synced prefix from a backup's replayed AOF, replay the
    /// unsynced suffix from a journaled witness (RIFL filters overlap), and
    /// publish the rebuilt partition map. Returns the new master ids in
    /// partition order.
    ///
    /// Re-entrant: each per-partition recovery is itself a journaled plan,
    /// and any plan left open by the previous incarnation (a recovery or
    /// migration the power loss interrupted — reload it first with
    /// [`Coordinator::reload_intent`]) is resolved afterwards, once the
    /// partitions it may reference exist again.
    pub async fn restart_cluster(&self) -> Result<Vec<MasterId>, String> {
        let parts = self.st.lock().config.partitions.clone();
        let mut new_ids = Vec::with_capacity(parts.len());
        for p in &parts {
            // The new master lands on the same server that hosted it before
            // the outage; per-partition recovery handles everything else.
            new_ids.push(self.recover_master(p.master_id, p.master).await?);
        }
        // Resolve surviving plans (an interrupted migration rolls forward
        // from the re-recovered source, or aborts if its incarnation died).
        self.resume_plans().await;
        Ok(new_ids)
    }

    /// Resolves every open orchestration plan (resume-or-abort), returning a
    /// human-readable outcome per plan. Plans that cannot be resolved yet
    /// (an unreachable server, say) stay open — check
    /// [`Coordinator::open_plan_count`] and call again.
    pub async fn resume_plans(&self) -> Vec<String> {
        let open = self.plans.lock().open.clone();
        let mut outcomes = Vec::with_capacity(open.len());
        for plan in open {
            let (id, what) = (plan.id, plan.spec.clone());
            let outcome = match &what {
                PlanSpec::Recover(_) => self.drive_recover(plan).await.map(|m| format!("{m:?}")),
                PlanSpec::Migrate(_) => self.drive_migrate(plan).await.map(|m| format!("{m:?}")),
            };
            outcomes.push(match outcome {
                Ok(m) => format!("plan {id} resolved -> {m}"),
                Err(e) => format!("plan {id}: {e}"),
            });
        }
        outcomes
    }

    /// Replaces a crashed/decommissioned witness (§3.6): start an instance on
    /// `new_w`, notify the master (which syncs to backups before answering,
    /// restoring `f` fault tolerance), bump the witness-list version.
    pub async fn replace_witness(
        &self,
        master_id: MasterId,
        old_w: ServerId,
        new_w: ServerId,
    ) -> Result<(), String> {
        let part = self
            .st
            .lock()
            .config
            .partition_by_master(master_id)
            .cloned()
            .ok_or_else(|| format!("unknown master {master_id:?}"))?;
        if !part.witnesses.contains(&old_w) {
            return Err(format!("{old_w} is not a witness of {master_id:?}"));
        }
        let rpc = (self.client_for)(part.master);
        match rpc.call(new_w, Request::WitnessStart { master_id }).await {
            Ok(Response::WitnessStarted { ok: true }) => {}
            other => return Err(format!("witness start failed: {other:?}")),
        }
        let new_list: Vec<ServerId> =
            part.witnesses.iter().map(|&w| if w == old_w { new_w } else { w }).collect();
        let new_version = part.witness_list_version.next();
        // The master syncs before acknowledging, so updates recorded only on
        // the decommissioned witness can no longer complete (§3.6).
        match rpc
            .call(
                part.master,
                Request::MasterWitnessList { version: new_version, witnesses: new_list.clone() },
            )
            .await
        {
            Ok(Response::WitnessListInstalled) => {}
            other => return Err(format!("master rejected witness list: {other:?}")),
        }
        // Best effort: tell the old witness to die (it may be unreachable).
        let _ = rpc.call(old_w, Request::WitnessEnd { master_id }).await;

        let mut st = self.st.lock();
        if let Some(p) = st.config.partitions.iter_mut().find(|p| p.master_id == master_id) {
            p.witnesses = new_list;
            p.witness_list_version = new_version;
        }
        st.config.version += 1;
        Ok(())
    }

    /// Splits `master_id`'s range at `split_at` and migrates the upper half
    /// to a new master on `target_srv` (§3.6).
    ///
    /// Re-entrant and crash-safe under the same plan journal as
    /// [`Coordinator::recover_master`]: a matching open plan is resumed
    /// (rolling forward from the source's stashed cut when the snapshot was
    /// already extracted), and a plan whose source incarnation has since
    /// died is aborted — safe, because the cut is memory-only and the
    /// source's backups still hold the full pre-split range, which is
    /// exactly what the source's own crash recovery restores.
    #[allow(clippy::too_many_arguments)]
    pub async fn migrate(
        &self,
        master_id: MasterId,
        split_at: u64,
        target_srv: ServerId,
        target_backups: Vec<ServerId>,
        target_witnesses: Vec<ServerId>,
    ) -> Result<MasterId, String> {
        if let Some(plan) = self.find_open_plan(|s| {
            matches!(s, PlanSpec::Migrate(m)
                if m.source == master_id && m.split_at == split_at && m.target_srv == target_srv)
        }) {
            return self.drive_migrate(plan).await;
        }
        if self.st.lock().config.partition_by_master(master_id).is_none() {
            return Err(format!("unknown master {master_id:?}"));
        }
        let new_id = {
            let mut st = self.st.lock();
            let id = MasterId(st.next_master);
            st.next_master += 1;
            id
        };
        let spec = MigrateSpec {
            source: master_id,
            split_at,
            target_srv,
            new_id,
            target_backups,
            target_witnesses,
        };
        let plan_id = self.plan_begin(&PlanSpec::Migrate(spec.clone()))?;
        self.drive_migrate(Plan { id: plan_id, spec: PlanSpec::Migrate(spec), steps: Vec::new() })
            .await
    }

    /// Resolves a migrate plan against the current cluster state.
    async fn drive_migrate(&self, plan: Plan) -> Result<MasterId, String> {
        let PlanSpec::Migrate(spec) = &plan.spec else {
            return Err("not a migrate plan".into());
        };
        let cfg = self.st.lock().config.clone();
        if cfg.partition_by_master(spec.new_id).is_some() {
            // Crashed after the commit point. Nothing left to do but drop
            // the source's stash and close.
            if let Some(p) = cfg.partition_by_master(spec.source) {
                if let Ok(srv) = self.server(p.master) {
                    if let Some(m) = srv.master().filter(|m| m.id() == spec.source) {
                        m.clear_migration_stash();
                    }
                }
            }
            self.plan_close(plan.id)?;
            return Ok(spec.new_id);
        }
        if cfg.partition_by_master(spec.source).is_none() {
            // The source incarnation died mid-plan (and its own recovery
            // restored the full pre-split range from its backups, the cut
            // being memory-only). Abort: destroy the never-published
            // target's remnants and close.
            self.plan_step(plan.id, PlanStep::Abort)?;
            self.abort_new_master_remnants(
                spec.new_id,
                spec.target_srv,
                &spec.target_backups,
                &spec.target_witnesses,
            )
            .await;
            self.plan_close(plan.id)?;
            return Err(format!(
                "migrate plan for {:?} aborted: source incarnation gone",
                spec.source
            ));
        }
        let new_id = self.migrate_run(plan.id, spec).await?;
        self.plan_close(plan.id)?;
        // The stash outlived its purpose the moment the plan closed.
        let cfg = self.st.lock().config.clone();
        if let Some(p) = cfg.partition_by_master(spec.source) {
            if let Ok(srv) = self.server(p.master) {
                if let Some(m) = srv.master().filter(|m| m.id() == spec.source) {
                    m.clear_migration_stash();
                }
            }
        }
        Ok(new_id)
    }

    /// Drives a migrate plan's steps; every step is journaled before it
    /// executes and is idempotent under re-issue.
    async fn migrate_run(&self, plan_id: u64, spec: &MigrateSpec) -> Result<MasterId, String> {
        let part = self
            .st
            .lock()
            .config
            .partition_by_master(spec.source)
            .cloned()
            .ok_or_else(|| format!("unknown master {:?}", spec.source))?;
        let old_master = self.server(part.master)?.master().ok_or("old master gone")?;
        if old_master.id() != spec.source {
            return Err(format!("source server no longer hosts {:?}", spec.source));
        }

        // Drain + cut. `migrate_out` stashes the cut snapshot atomically
        // with taking it, so a resumed plan re-issuing this step gets the
        // stash back instead of an impossible second cut.
        self.plan_step(plan_id, PlanStep::Drain)?;
        let snap = old_master.migrate_out(spec.split_at).await?;
        let (_, hi) = part.range.split_at(spec.split_at);

        // Reset-start the target's witness instances (see recover_attempt
        // for why reset-start, and why it is safe before publish).
        self.plan_step(plan_id, PlanStep::TargetWitnesses)?;
        let rpc = (self.client_for)(spec.target_srv);
        for &w in &spec.target_witnesses {
            let _ = rpc.call(w, Request::WitnessEnd { master_id: spec.new_id }).await;
            match rpc.call(w, Request::WitnessStart { master_id: spec.new_id }).await {
                Ok(Response::WitnessStarted { ok: true }) => {}
                other => return Err(format!("witness start failed: {other:?}")),
            }
        }

        // Seed the target backups with the migrated snapshot, then install
        // the target master. `BackupInstall` at an equal epoch re-installs
        // idempotently; `set_master` seals any replaced half-install.
        self.plan_step(plan_id, PlanStep::TargetInstall)?;
        let blob = snap.to_blob();
        for &b in &spec.target_backups {
            match rpc
                .call(
                    b,
                    Request::BackupInstall {
                        master_id: spec.new_id,
                        epoch: Epoch(1),
                        next_seq: 0,
                        snapshot: blob.clone(),
                    },
                )
                .await
            {
                Ok(Response::BackupInstalled) => {}
                other => return Err(format!("backup install failed: {other:?}")),
            }
        }
        let (store, rifl) = Snapshot::restore(&snap);
        let master = Master::with_state(
            MasterSeed {
                id: spec.new_id,
                epoch: Epoch(1),
                backups: spec.target_backups.clone(),
                witnesses: spec.target_witnesses.clone(),
                wl_version: WitnessListVersion(1),
                range: hi,
            },
            self.master_cfg.clone(),
            Arc::clone(&rpc),
            store,
            rifl,
            0,
        );
        master.spawn_syncer();
        self.server(spec.target_srv)?.set_master(Arc::clone(&master));

        // Reset the source's witnesses (fresh instances + version bump), so
        // stray records for migrated keys are ruled out (§3.6). The explicit
        // sync first shrinks the window in which a just-accepted update's
        // only witness record dies with the old instance.
        let new_src_version = part.witness_list_version.next();
        self.plan_step(plan_id, PlanStep::SourceRefit(new_src_version))?;
        let src_rpc = (self.client_for)(part.master);
        let _ = src_rpc.call(part.master, Request::Sync { master_id: spec.source }).await;
        for &w in &part.witnesses {
            let _ = src_rpc.call(w, Request::WitnessEnd { master_id: spec.source }).await;
            match src_rpc.call(w, Request::WitnessStart { master_id: spec.source }).await {
                Ok(Response::WitnessStarted { ok: true }) => {}
                other => return Err(format!("witness restart failed: {other:?}")),
            }
        }
        // Equal-or-newer versions install idempotently at the master (which
        // syncs before acknowledging either way).
        match src_rpc
            .call(
                part.master,
                Request::MasterWitnessList {
                    version: new_src_version,
                    witnesses: part.witnesses.clone(),
                },
            )
            .await
        {
            Ok(Response::WitnessListInstalled) => {}
            other => return Err(format!("source master rejected list: {other:?}")),
        }

        // Commit point: publish both halves. In-memory mutation, no await
        // between the journal record and the swap.
        self.plan_step(plan_id, PlanStep::Publish)?;
        let mut st = self.st.lock();
        if let Some(p) = st.config.partitions.iter_mut().find(|p| p.master_id == spec.source) {
            p.range = HashRange { start: p.range.start, end: spec.split_at };
            p.witness_list_version = new_src_version;
        }
        st.config.partitions.push(PartitionConfig {
            master_id: spec.new_id,
            master: spec.target_srv,
            backups: spec.target_backups.clone(),
            witnesses: spec.target_witnesses.clone(),
            witness_list_version: WitnessListVersion(1),
            epoch: Epoch(1),
            range: hi,
        });
        st.config.version += 1;
        Ok(spec.new_id)
    }

    /// Registered servers currently holding no role in any partition — the
    /// migration/recovery target pool, in deterministic (id) order.
    pub fn spare_servers(&self) -> Vec<ServerId> {
        let cfg = self.st.lock().config.clone();
        let mut ids: Vec<ServerId> = self.servers.lock().keys().copied().collect();
        ids.sort();
        ids.retain(|id| {
            cfg.partitions
                .iter()
                .all(|p| p.master != *id && !p.backups.contains(id) && !p.witnesses.contains(id))
        });
        ids
    }

    /// Polls one partition master's load snapshot over the transport.
    pub async fn poll_load(&self, part: &PartitionConfig) -> Result<LoadStats, String> {
        let rpc = (self.client_for)(part.master);
        match rpc.call(part.master, Request::MasterLoadStats { master_id: part.master_id }).await {
            Ok(Response::LoadStats { stats }) => Ok(stats),
            other => Err(format!("load poll of {:?} failed: {other:?}", part.master_id)),
        }
    }

    /// Expires overdue client leases, telling every master to sync before
    /// dropping the clients' completion records (§4.8).
    pub async fn tick_leases(&self) {
        let (expired, masters) = {
            let mut st = self.st.lock();
            let now = self.now_ms();
            let expired = st.leases.collect_expired(now);
            let masters: Vec<ServerId> = st.config.partitions.iter().map(|p| p.master).collect();
            (expired, masters)
        };
        for client in expired {
            for &m in &masters {
                let rpc = (self.client_for)(m);
                let _ = rpc.call(m, Request::MasterClientExpired { client }).await;
            }
        }
    }

    /// Handles coordinator RPCs (config + leases).
    pub fn handle_request(&self, req: &Request) -> Response {
        match req {
            Request::GetConfig => Response::Config { config: self.st.lock().config.clone() },
            Request::AcquireLease => {
                let now = self.now_ms();
                let mut st = self.st.lock();
                let client = st.leases.issue(now);
                Response::Lease { client, ttl_ms: st.leases.ttl_ms() }
            }
            Request::RenewLease { client } => {
                let now = self.now_ms();
                let mut st = self.st.lock();
                if st.leases.renew(*client, now) {
                    Response::Lease { client: *client, ttl_ms: st.leases.ttl_ms() }
                } else {
                    Response::Retry { reason: "lease expired; reconnect".into() }
                }
            }
            _ => Response::Retry { reason: "not a coordinator request".into() },
        }
    }

    /// Whether `client` currently holds a live lease (tests).
    pub fn lease_live(&self, client: ClientId) -> bool {
        let now = self.now_ms();
        self.st.lock().leases.is_live(client, now)
    }
}

/// Transport adapter for the coordinator.
pub struct CoordinatorHandler(pub Arc<Coordinator>);

impl RpcHandler for CoordinatorHandler {
    fn handle(&self, _from: ServerId, req: Request) -> BoxFuture<'static, Response> {
        let coord = Arc::clone(&self.0);
        Box::pin(async move { coord.handle_request(&req) })
    }
}

/// Tuning knobs for the load-driven split loop.
#[derive(Debug, Clone)]
pub struct AutoscaleConfig {
    /// How often [`Autoscaler::run`] polls every partition.
    pub poll_interval: Duration,
    /// A partition is saturated only when its speculative queue is at least
    /// this deep at poll time (queue-depth signal).
    pub saturation_pending: u64,
    /// ... and it executed at least this many updates since the previous
    /// poll (rate signal — a deep queue alone can be a transient).
    pub min_update_delta: u64,
    /// Never split past this many partitions.
    pub max_partitions: usize,
    /// Quiet period after a successful split: let the moved half warm up
    /// (and clients re-route) before judging saturation again.
    pub cooldown: Duration,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            poll_interval: Duration::from_millis(50),
            saturation_pending: 8,
            min_update_delta: 16,
            max_partitions: 8,
            cooldown: Duration::from_millis(100),
        }
    }
}

/// What one autoscaler tick decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScaleDecision {
    /// No partition met the saturation criteria (or the cluster is at
    /// `max_partitions`); nothing changed.
    Hold,
    /// `source` was split at `split_at` (the hotkey-mass median) and its
    /// upper half migrated to a new master on `target`.
    Split {
        /// The partition that was saturated.
        source: MasterId,
        /// The load-weighted split point.
        split_at: u64,
        /// The spare server now hosting the new master.
        target: ServerId,
        /// The new master's id.
        new_master: MasterId,
    },
}

/// The load-driven split loop: polls per-partition [`LoadStats`], picks the
/// most saturated partition, splits it at the hotkey-mass median, and
/// migrates the upper half onto a spare server — the §3.6 migration path
/// driven by load instead of an operator. Holds its own poll state (the
/// previous update counters for rate deltas); the coordinator stays
/// stateless about scaling.
pub struct Autoscaler {
    coord: Arc<Coordinator>,
    cfg: AutoscaleConfig,
    /// Update counters from the previous poll, per master incarnation.
    last_updates: HashMap<MasterId, u64>,
}

impl Autoscaler {
    /// Creates an autoscaler over `coord`.
    pub fn new(coord: Arc<Coordinator>, cfg: AutoscaleConfig) -> Autoscaler {
        Autoscaler { coord, cfg, last_updates: HashMap::new() }
    }

    /// One poll-and-maybe-split round. Errors are advisory (an unreachable
    /// master, a split that raced concurrent writes); the caller just ticks
    /// again — exactly what [`run`](Self::run) does.
    pub async fn tick(&mut self) -> Result<ScaleDecision, String> {
        let config = self.coord.config();
        if config.partitions.len() >= self.cfg.max_partitions {
            return Ok(ScaleDecision::Hold);
        }
        // Poll every partition; skip unreachable masters (they are being
        // recovered — not this loop's business).
        let mut polled: Vec<(PartitionConfig, LoadStats, u64)> = Vec::new();
        for part in &config.partitions {
            let Ok(stats) = self.coord.poll_load(part).await else { continue };
            let delta = stats
                .updates
                .saturating_sub(self.last_updates.get(&part.master_id).copied().unwrap_or(0));
            self.last_updates.insert(part.master_id, stats.updates);
            polled.push((part.clone(), stats, delta));
        }
        // Dead incarnations (recovered or migrated away) drop out of the
        // poll state so it cannot grow across reconfigurations.
        self.last_updates.retain(|id, _| config.partition_by_master(*id).is_some());

        let Some((part, stats, _)) = polled
            .into_iter()
            .filter(|(_, s, delta)| {
                s.pending >= self.cfg.saturation_pending && *delta >= self.cfg.min_update_delta
            })
            .max_by_key(|(_, s, delta)| s.pending + delta)
        else {
            return Ok(ScaleDecision::Hold);
        };
        let split_at = stats
            .split_point()
            .ok_or_else(|| format!("partition {:?} saturated but unsplittable", part.master_id))?;
        let target = self
            .coord
            .spare_servers()
            .into_iter()
            .next()
            .ok_or_else(|| "no spare server for scale-out".to_string())?;
        // The new partition reuses the source's replica/witness hosts — the
        // Figure 2 co-hosting the rest of the cluster already runs with.
        let new_master = self
            .coord
            .migrate(part.master_id, split_at, target, part.backups.clone(), part.witnesses.clone())
            .await?;
        Ok(ScaleDecision::Split { source: part.master_id, split_at, target, new_master })
    }

    /// Runs the loop until [`AutoscalerHandle::shutdown`]: poll every
    /// `poll_interval`, cool down after a successful split. A tick that
    /// errors (unreachable master, raced split) never kills the loop — the
    /// error is retained on the handle and the loop ticks again.
    pub fn run(mut self) -> AutoscalerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let errors = Arc::new(Mutex::ranked(
            lockrank::AUTOSCALER_ERRORS,
            "core.autoscaler.errors",
            Vec::new(),
        ));
        let task = {
            let stop = Arc::clone(&stop);
            let errors = Arc::clone(&errors);
            tokio::spawn(async move {
                loop {
                    tokio::time::sleep(self.cfg.poll_interval).await;
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    match self.tick().await {
                        Ok(ScaleDecision::Split { .. }) => {
                            tokio::time::sleep(self.cfg.cooldown).await;
                        }
                        Ok(ScaleDecision::Hold) => {}
                        Err(e) => {
                            let mut errs = errors.lock();
                            // Bounded: keep the newest errors, not a leak.
                            if errs.len() >= AutoscalerHandle::MAX_ERRORS {
                                errs.remove(0);
                            }
                            errs.push(e);
                        }
                    }
                }
            })
        };
        AutoscalerHandle { stop, errors, task }
    }
}

/// Graceful-shutdown handle for a running [`Autoscaler`] loop, and the
/// surface where its tick errors land (instead of vanishing): a poisoned
/// tick never kills the loop, but an operator can see it happened.
pub struct AutoscalerHandle {
    stop: Arc<AtomicBool>,
    errors: Arc<Mutex<Vec<String>>>,
    task: tokio::task::JoinHandle<()>,
}

impl AutoscalerHandle {
    /// Retained tick-error cap (newest win).
    pub const MAX_ERRORS: usize = 32;

    /// Asks the loop to exit; it stops at the next poll boundary (within
    /// one `poll_interval`, or one `cooldown` + `poll_interval` if a split
    /// just landed).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Errors surfaced by ticks so far (newest last, capped at
    /// [`AutoscalerHandle::MAX_ERRORS`]).
    pub fn tick_errors(&self) -> Vec<String> {
        self.errors.lock().clone()
    }

    /// The underlying task, for callers that want to await loop exit after
    /// [`AutoscalerHandle::shutdown`].
    pub fn task(self) -> tokio::task::JoinHandle<()> {
        self.task
    }
}
