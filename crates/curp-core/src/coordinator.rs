//! The cluster configuration manager ("the owner of all cluster
//! configurations", §3.6).
//!
//! The coordinator is the consensus-replicated control plane the paper
//! assumes as given (Chubby/ZooKeeper-class); here it is a single in-process
//! authority. It owns the partition map, witness-list versions, fencing
//! epochs and RIFL leases, and orchestrates the three reconfigurations of
//! §3.6 plus master crash recovery:
//!
//! * **master recovery** — fence the crashed master's epoch on all backups,
//!   have the new master restore + replay (§4.6), swap the partition entry;
//! * **witness replacement** — start a fresh instance, tell the master (which
//!   syncs before acknowledging), bump the witness-list version;
//! * **migration** — split a partition and move the upper half.
//!
//! The [`Autoscaler`] drives the migration path from load instead of an
//! operator: it polls every partition master's [`LoadStats`] snapshot, and
//! when one saturates (deep speculative queue while executing a healthy
//! update rate) it splits that partition at the hotkey-mass median and
//! migrates the upper half onto a spare server — all while clients keep
//! running (their `NotOwner` retries re-route against the re-published map,
//! whose version increases monotonically: once a coordinator mutation
//! shrinks an owner's range, every republication carries a strictly larger
//! version, so a client can never install a stale map that double-owns a
//! hash).
//!
//! Control-plane actions use direct [`CurpServer`] handles (coordinator and
//! servers share a process in this implementation); the data plane runs over
//! the transport.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use curp_proto::cluster::{ClusterConfig, HashRange, LoadStats, PartitionConfig};
use curp_proto::message::{Request, Response};
use curp_proto::types::{ClientId, MasterId, ServerId, WitnessListVersion};
use curp_rifl::LeaseManager;
use curp_transport::rpc::{BoxFuture, RpcClient, RpcHandler};
use parking_lot::Mutex;

use crate::master::{futures_join_all, Master, MasterConfig, MasterSeed};
use crate::server::CurpServer;
use crate::snapshot::Snapshot;

/// Factory producing an [`RpcClient`] whose calls originate from a given
/// server id (masters send syncs/gcs *as themselves*).
pub type ClientFactory = Box<dyn Fn(ServerId) -> Arc<dyn RpcClient> + Send + Sync>;

struct CoordState {
    config: ClusterConfig,
    leases: LeaseManager,
    next_master: u64,
}

/// The coordinator.
pub struct Coordinator {
    client_for: ClientFactory,
    master_cfg: MasterConfig,
    st: Mutex<CoordState>,
    servers: Mutex<HashMap<ServerId, Arc<CurpServer>>>,
    epoch0: tokio::time::Instant,
}

impl Coordinator {
    /// Creates a coordinator. `client_for` builds per-server RPC clients;
    /// `master_cfg` is the template for every master it creates.
    pub fn new(
        client_for: ClientFactory,
        master_cfg: MasterConfig,
        lease_ttl_ms: u64,
    ) -> Arc<Self> {
        Arc::new(Coordinator {
            client_for,
            master_cfg,
            st: Mutex::new(CoordState {
                config: ClusterConfig { partitions: Vec::new(), version: 1 },
                leases: LeaseManager::new(lease_ttl_ms),
                next_master: 1,
            }),
            servers: Mutex::new(HashMap::new()),
            epoch0: tokio::time::Instant::now(),
        })
    }

    fn now_ms(&self) -> u64 {
        self.epoch0.elapsed().as_millis() as u64
    }

    /// Registers a server handle for control-plane use.
    pub fn register_server(&self, server: Arc<CurpServer>) {
        self.servers.lock().insert(server.id(), server);
    }

    fn server(&self, id: ServerId) -> Result<Arc<CurpServer>, String> {
        self.servers.lock().get(&id).cloned().ok_or_else(|| format!("unknown server {id}"))
    }

    /// Current configuration snapshot.
    pub fn config(&self) -> ClusterConfig {
        self.st.lock().config.clone()
    }

    /// Creates a new partition: installs a master on `master_srv`, starts
    /// witness instances, and publishes the configuration.
    pub async fn create_partition(
        &self,
        master_srv: ServerId,
        backups: Vec<ServerId>,
        witnesses: Vec<ServerId>,
        range: HashRange,
    ) -> Result<MasterId, String> {
        let master_id = {
            let mut st = self.st.lock();
            let id = MasterId(st.next_master);
            st.next_master += 1;
            id
        };
        let wl_version = WitnessListVersion(1);
        // Start witness instances before the master serves anything.
        for &w in &witnesses {
            let rsp =
                (self.client_for)(master_srv).call(w, Request::WitnessStart { master_id }).await;
            match rsp {
                Ok(Response::WitnessStarted { ok: true }) => {}
                other => return Err(format!("witness start on {w} failed: {other:?}")),
            }
        }
        let server = self.server(master_srv)?;
        let master = Master::new(
            MasterSeed {
                id: master_id,
                epoch: curp_proto::types::Epoch(1),
                backups: backups.clone(),
                witnesses: witnesses.clone(),
                wl_version,
                range,
            },
            self.master_cfg.clone(),
            (self.client_for)(master_srv),
        );
        master.spawn_syncer();
        server.set_master(Arc::clone(&master));

        let mut st = self.st.lock();
        st.config.partitions.push(PartitionConfig {
            master_id,
            master: master_srv,
            backups,
            witnesses,
            witness_list_version: wl_version,
            epoch: curp_proto::types::Epoch(1),
            range,
        });
        st.config.version += 1;
        Ok(master_id)
    }

    /// Recovers a crashed master onto `new_srv` (§3.3, §4.6): fences the old
    /// epoch on every backup, restores from the first reachable backup,
    /// replays from the first reachable witness, starts fresh witness
    /// instances for the new master id, and publishes the new configuration.
    pub async fn recover_master(
        &self,
        crashed: MasterId,
        new_srv: ServerId,
    ) -> Result<MasterId, String> {
        let part = self
            .st
            .lock()
            .config
            .partition_by_master(crashed)
            .cloned()
            .ok_or_else(|| format!("unknown master {crashed:?}"))?;
        let rpc = (self.client_for)(new_srv);
        let new_epoch = part.epoch.next();

        // Step 0: fence the zombie (§4.7). Every backup must be fenced
        // before we read state, or a zombie sync could slip in afterwards.
        for &b in &part.backups {
            match rpc
                .call(b, Request::BackupSetEpoch { master_id: crashed, epoch: new_epoch })
                .await
            {
                Ok(Response::EpochSet) => {}
                other => return Err(format!("fencing backup {b} failed: {other:?}")),
            }
        }

        let new_id = {
            let mut st = self.st.lock();
            let id = MasterId(st.next_master);
            st.next_master += 1;
            id
        };

        // New witness instances for the new master id, on the same servers
        // ("resetting witnesses for the new master or assigning a new set").
        for &w in &part.witnesses {
            match rpc.call(w, Request::WitnessStart { master_id: new_id }).await {
                Ok(Response::WitnessStarted { ok: true }) => {}
                other => return Err(format!("witness start on {w} failed: {other:?}")),
            }
        }

        // Pick the first reachable witness as the replay source; the new
        // master's getRecoveryData freezes it (§4.6). "The new master picks
        // any available witness. If none ... are reachable, [it] must wait."
        let mut recovered: Result<Arc<Master>, String> = Err("no backup reachable".into());
        'outer: for &backup_src in &part.backups {
            for &witness_src in &part.witnesses {
                let seed = MasterSeed {
                    id: new_id,
                    epoch: new_epoch,
                    backups: part.backups.clone(),
                    witnesses: part.witnesses.clone(),
                    wl_version: part.witness_list_version.next(),
                    range: part.range,
                };
                match Master::recover(
                    seed,
                    self.master_cfg.clone(),
                    Arc::clone(&rpc),
                    crashed,
                    backup_src,
                    witness_src,
                )
                .await
                {
                    Ok(m) => {
                        recovered = Ok(m);
                        break 'outer;
                    }
                    Err(e) => recovered = Err(e),
                }
            }
        }
        let master = recovered?;
        master.spawn_syncer();
        self.server(new_srv)?.set_master(Arc::clone(&master));

        // Decommission the old witness instances; they are now useless.
        let ends =
            part.witnesses.iter().map(|&w| rpc.call(w, Request::WitnessEnd { master_id: crashed }));
        let _ = futures_join_all(ends).await;

        // Drop the crashed master's replicas (and, on durable backups,
        // their on-disk AOF/snapshot). Safe here: `Master::recover` returned
        // only after every backup acknowledged the new master's install, so
        // the old files can never be needed again. Control-plane direct
        // handles, like the rest of the coordinator's orchestration.
        for &b in &part.backups {
            if let Ok(srv) = self.server(b) {
                srv.backup().drop_replica(crashed);
            }
        }

        let mut st = self.st.lock();
        if let Some(p) = st.config.partitions.iter_mut().find(|p| p.master_id == crashed) {
            p.master_id = new_id;
            p.master = new_srv;
            p.epoch = new_epoch;
            p.witness_list_version = p.witness_list_version.next();
        }
        st.config.version += 1;
        Ok(new_id)
    }

    /// Rebuilds the whole cluster after a power loss (§5.4's crash model
    /// applied to every server at once).
    ///
    /// Precondition: every server process has been restarted from its
    /// on-disk state (`CurpServer::new_durable` over the same data
    /// directories — backups replay their AOFs, witnesses their journals)
    /// and re-registered with this coordinator and the transport. The
    /// coordinator itself models the consensus-replicated configuration
    /// store the paper assumes as given, so its partition map survives.
    ///
    /// Each partition then runs the standard crash recovery (§4.6) with the
    /// *whole cluster* as the casualty: fence the dead incarnation's epoch,
    /// restore the synced prefix from a backup's replayed AOF, replay the
    /// unsynced suffix from a journaled witness (RIFL filters overlap), and
    /// publish the rebuilt partition map. Returns the new master ids in
    /// partition order.
    pub async fn restart_cluster(&self) -> Result<Vec<MasterId>, String> {
        let parts = self.st.lock().config.partitions.clone();
        let mut new_ids = Vec::with_capacity(parts.len());
        for p in &parts {
            // The new master lands on the same server that hosted it before
            // the outage; per-partition recovery handles everything else.
            new_ids.push(self.recover_master(p.master_id, p.master).await?);
        }
        Ok(new_ids)
    }

    /// Replaces a crashed/decommissioned witness (§3.6): start an instance on
    /// `new_w`, notify the master (which syncs to backups before answering,
    /// restoring `f` fault tolerance), bump the witness-list version.
    pub async fn replace_witness(
        &self,
        master_id: MasterId,
        old_w: ServerId,
        new_w: ServerId,
    ) -> Result<(), String> {
        let part = self
            .st
            .lock()
            .config
            .partition_by_master(master_id)
            .cloned()
            .ok_or_else(|| format!("unknown master {master_id:?}"))?;
        if !part.witnesses.contains(&old_w) {
            return Err(format!("{old_w} is not a witness of {master_id:?}"));
        }
        let rpc = (self.client_for)(part.master);
        match rpc.call(new_w, Request::WitnessStart { master_id }).await {
            Ok(Response::WitnessStarted { ok: true }) => {}
            other => return Err(format!("witness start failed: {other:?}")),
        }
        let new_list: Vec<ServerId> =
            part.witnesses.iter().map(|&w| if w == old_w { new_w } else { w }).collect();
        let new_version = part.witness_list_version.next();
        // The master syncs before acknowledging, so updates recorded only on
        // the decommissioned witness can no longer complete (§3.6).
        match rpc
            .call(
                part.master,
                Request::MasterWitnessList { version: new_version, witnesses: new_list.clone() },
            )
            .await
        {
            Ok(Response::WitnessListInstalled) => {}
            other => return Err(format!("master rejected witness list: {other:?}")),
        }
        // Best effort: tell the old witness to die (it may be unreachable).
        let _ = rpc.call(old_w, Request::WitnessEnd { master_id }).await;

        let mut st = self.st.lock();
        if let Some(p) = st.config.partitions.iter_mut().find(|p| p.master_id == master_id) {
            p.witnesses = new_list;
            p.witness_list_version = new_version;
        }
        st.config.version += 1;
        Ok(())
    }

    /// Splits `master_id`'s range at `split_at` and migrates the upper half
    /// to a new master on `target_srv` (§3.6).
    #[allow(clippy::too_many_arguments)]
    pub async fn migrate(
        &self,
        master_id: MasterId,
        split_at: u64,
        target_srv: ServerId,
        target_backups: Vec<ServerId>,
        target_witnesses: Vec<ServerId>,
    ) -> Result<MasterId, String> {
        let part = self
            .st
            .lock()
            .config
            .partition_by_master(master_id)
            .cloned()
            .ok_or_else(|| format!("unknown master {master_id:?}"))?;
        let old_master = self.server(part.master)?.master().ok_or("old master gone")?;

        // Final step of migration: the source syncs + stops serving the
        // migrated half, and its witness data is ruled out of the protocol.
        let snap = old_master.migrate_out(split_at).await?;
        let (_, hi) = part.range.split_at(split_at);

        let new_id = {
            let mut st = self.st.lock();
            let id = MasterId(st.next_master);
            st.next_master += 1;
            id
        };
        let rpc = (self.client_for)(target_srv);
        for &w in &target_witnesses {
            match rpc.call(w, Request::WitnessStart { master_id: new_id }).await {
                Ok(Response::WitnessStarted { ok: true }) => {}
                other => return Err(format!("witness start failed: {other:?}")),
            }
        }
        // Seed the target backups with the migrated snapshot.
        let blob = snap.to_blob();
        for &b in &target_backups {
            match rpc
                .call(
                    b,
                    Request::BackupInstall {
                        master_id: new_id,
                        epoch: curp_proto::types::Epoch(1),
                        next_seq: 0,
                        snapshot: blob.clone(),
                    },
                )
                .await
            {
                Ok(Response::BackupInstalled) => {}
                other => return Err(format!("backup install failed: {other:?}")),
            }
        }
        let (store, rifl) = Snapshot::restore(&snap);
        let master = Master::with_state(
            MasterSeed {
                id: new_id,
                epoch: curp_proto::types::Epoch(1),
                backups: target_backups.clone(),
                witnesses: target_witnesses.clone(),
                wl_version: WitnessListVersion(1),
                range: hi,
            },
            self.master_cfg.clone(),
            Arc::clone(&rpc),
            store,
            rifl,
            0,
        );
        master.spawn_syncer();
        self.server(target_srv)?.set_master(Arc::clone(&master));

        // Reset the source's witnesses (fresh instances + version bump), so
        // stray records for migrated keys are ruled out (§3.6).
        let src_rpc = (self.client_for)(part.master);
        let new_src_version = part.witness_list_version.next();
        for &w in &part.witnesses {
            let _ = src_rpc.call(w, Request::WitnessEnd { master_id }).await;
            match src_rpc.call(w, Request::WitnessStart { master_id }).await {
                Ok(Response::WitnessStarted { ok: true }) => {}
                other => return Err(format!("witness restart failed: {other:?}")),
            }
        }
        match src_rpc
            .call(
                part.master,
                Request::MasterWitnessList {
                    version: new_src_version,
                    witnesses: part.witnesses.clone(),
                },
            )
            .await
        {
            Ok(Response::WitnessListInstalled) => {}
            other => return Err(format!("source master rejected list: {other:?}")),
        }

        let mut st = self.st.lock();
        if let Some(p) = st.config.partitions.iter_mut().find(|p| p.master_id == master_id) {
            p.range = HashRange { start: p.range.start, end: split_at };
            p.witness_list_version = new_src_version;
        }
        st.config.partitions.push(PartitionConfig {
            master_id: new_id,
            master: target_srv,
            backups: target_backups,
            witnesses: target_witnesses,
            witness_list_version: WitnessListVersion(1),
            epoch: curp_proto::types::Epoch(1),
            range: hi,
        });
        st.config.version += 1;
        Ok(new_id)
    }

    /// Registered servers currently holding no role in any partition — the
    /// migration/recovery target pool, in deterministic (id) order.
    pub fn spare_servers(&self) -> Vec<ServerId> {
        let cfg = self.st.lock().config.clone();
        let mut ids: Vec<ServerId> = self.servers.lock().keys().copied().collect();
        ids.sort();
        ids.retain(|id| {
            cfg.partitions
                .iter()
                .all(|p| p.master != *id && !p.backups.contains(id) && !p.witnesses.contains(id))
        });
        ids
    }

    /// Polls one partition master's load snapshot over the transport.
    pub async fn poll_load(&self, part: &PartitionConfig) -> Result<LoadStats, String> {
        let rpc = (self.client_for)(part.master);
        match rpc.call(part.master, Request::MasterLoadStats { master_id: part.master_id }).await {
            Ok(Response::LoadStats { stats }) => Ok(stats),
            other => Err(format!("load poll of {:?} failed: {other:?}", part.master_id)),
        }
    }

    /// Expires overdue client leases, telling every master to sync before
    /// dropping the clients' completion records (§4.8).
    pub async fn tick_leases(&self) {
        let (expired, masters) = {
            let mut st = self.st.lock();
            let now = self.now_ms();
            let expired = st.leases.collect_expired(now);
            let masters: Vec<ServerId> = st.config.partitions.iter().map(|p| p.master).collect();
            (expired, masters)
        };
        for client in expired {
            for &m in &masters {
                let rpc = (self.client_for)(m);
                let _ = rpc.call(m, Request::MasterClientExpired { client }).await;
            }
        }
    }

    /// Handles coordinator RPCs (config + leases).
    pub fn handle_request(&self, req: &Request) -> Response {
        match req {
            Request::GetConfig => Response::Config { config: self.st.lock().config.clone() },
            Request::AcquireLease => {
                let now = self.now_ms();
                let mut st = self.st.lock();
                let client = st.leases.issue(now);
                Response::Lease { client, ttl_ms: st.leases.ttl_ms() }
            }
            Request::RenewLease { client } => {
                let now = self.now_ms();
                let mut st = self.st.lock();
                if st.leases.renew(*client, now) {
                    Response::Lease { client: *client, ttl_ms: st.leases.ttl_ms() }
                } else {
                    Response::Retry { reason: "lease expired; reconnect".into() }
                }
            }
            _ => Response::Retry { reason: "not a coordinator request".into() },
        }
    }

    /// Whether `client` currently holds a live lease (tests).
    pub fn lease_live(&self, client: ClientId) -> bool {
        let now = self.now_ms();
        self.st.lock().leases.is_live(client, now)
    }
}

/// Transport adapter for the coordinator.
pub struct CoordinatorHandler(pub Arc<Coordinator>);

impl RpcHandler for CoordinatorHandler {
    fn handle(&self, _from: ServerId, req: Request) -> BoxFuture<'static, Response> {
        let coord = Arc::clone(&self.0);
        Box::pin(async move { coord.handle_request(&req) })
    }
}

/// Tuning knobs for the load-driven split loop.
#[derive(Debug, Clone)]
pub struct AutoscaleConfig {
    /// How often [`Autoscaler::run`] polls every partition.
    pub poll_interval: Duration,
    /// A partition is saturated only when its speculative queue is at least
    /// this deep at poll time (queue-depth signal).
    pub saturation_pending: u64,
    /// ... and it executed at least this many updates since the previous
    /// poll (rate signal — a deep queue alone can be a transient).
    pub min_update_delta: u64,
    /// Never split past this many partitions.
    pub max_partitions: usize,
    /// Quiet period after a successful split: let the moved half warm up
    /// (and clients re-route) before judging saturation again.
    pub cooldown: Duration,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            poll_interval: Duration::from_millis(50),
            saturation_pending: 8,
            min_update_delta: 16,
            max_partitions: 8,
            cooldown: Duration::from_millis(100),
        }
    }
}

/// What one autoscaler tick decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScaleDecision {
    /// No partition met the saturation criteria (or the cluster is at
    /// `max_partitions`); nothing changed.
    Hold,
    /// `source` was split at `split_at` (the hotkey-mass median) and its
    /// upper half migrated to a new master on `target`.
    Split {
        /// The partition that was saturated.
        source: MasterId,
        /// The load-weighted split point.
        split_at: u64,
        /// The spare server now hosting the new master.
        target: ServerId,
        /// The new master's id.
        new_master: MasterId,
    },
}

/// The load-driven split loop: polls per-partition [`LoadStats`], picks the
/// most saturated partition, splits it at the hotkey-mass median, and
/// migrates the upper half onto a spare server — the §3.6 migration path
/// driven by load instead of an operator. Holds its own poll state (the
/// previous update counters for rate deltas); the coordinator stays
/// stateless about scaling.
pub struct Autoscaler {
    coord: Arc<Coordinator>,
    cfg: AutoscaleConfig,
    /// Update counters from the previous poll, per master incarnation.
    last_updates: HashMap<MasterId, u64>,
}

impl Autoscaler {
    /// Creates an autoscaler over `coord`.
    pub fn new(coord: Arc<Coordinator>, cfg: AutoscaleConfig) -> Autoscaler {
        Autoscaler { coord, cfg, last_updates: HashMap::new() }
    }

    /// One poll-and-maybe-split round. Errors are advisory (an unreachable
    /// master, a split that raced concurrent writes); the caller just ticks
    /// again — exactly what [`run`](Self::run) does.
    pub async fn tick(&mut self) -> Result<ScaleDecision, String> {
        let config = self.coord.config();
        if config.partitions.len() >= self.cfg.max_partitions {
            return Ok(ScaleDecision::Hold);
        }
        // Poll every partition; skip unreachable masters (they are being
        // recovered — not this loop's business).
        let mut polled: Vec<(PartitionConfig, LoadStats, u64)> = Vec::new();
        for part in &config.partitions {
            let Ok(stats) = self.coord.poll_load(part).await else { continue };
            let delta = stats
                .updates
                .saturating_sub(self.last_updates.get(&part.master_id).copied().unwrap_or(0));
            self.last_updates.insert(part.master_id, stats.updates);
            polled.push((part.clone(), stats, delta));
        }
        // Dead incarnations (recovered or migrated away) drop out of the
        // poll state so it cannot grow across reconfigurations.
        self.last_updates.retain(|id, _| config.partition_by_master(*id).is_some());

        let Some((part, stats, _)) = polled
            .into_iter()
            .filter(|(_, s, delta)| {
                s.pending >= self.cfg.saturation_pending && *delta >= self.cfg.min_update_delta
            })
            .max_by_key(|(_, s, delta)| s.pending + delta)
        else {
            return Ok(ScaleDecision::Hold);
        };
        let split_at = stats
            .split_point()
            .ok_or_else(|| format!("partition {:?} saturated but unsplittable", part.master_id))?;
        let target = self
            .coord
            .spare_servers()
            .into_iter()
            .next()
            .ok_or_else(|| "no spare server for scale-out".to_string())?;
        // The new partition reuses the source's replica/witness hosts — the
        // Figure 2 co-hosting the rest of the cluster already runs with.
        let new_master = self
            .coord
            .migrate(part.master_id, split_at, target, part.backups.clone(), part.witnesses.clone())
            .await?;
        Ok(ScaleDecision::Split { source: part.master_id, split_at, target, new_master })
    }

    /// Runs the loop forever: poll every `poll_interval`, cool down after a
    /// successful split. Abort the returned handle to stop it.
    pub fn run(mut self) -> tokio::task::JoinHandle<()> {
        tokio::spawn(async move {
            loop {
                tokio::time::sleep(self.cfg.poll_interval).await;
                if let Ok(ScaleDecision::Split { .. }) = self.tick().await {
                    tokio::time::sleep(self.cfg.cooldown).await;
                }
            }
        })
    }
}
