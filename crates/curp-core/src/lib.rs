//! The CURP protocol core (§3–4 of the paper).
//!
//! This crate wires the substrates (`curp-storage`, `curp-rifl`,
//! `curp-witness`, `curp-transport`) into the four protocol roles:
//!
//! * [`master::Master`] — speculatively executes updates, enforces
//!   commutativity among unsynced operations, batches asynchronous backup
//!   syncs (§4.4) and garbage-collects witnesses (§4.5). Also performs crash
//!   recovery as the *new* master (§4.6) and migration (§3.6).
//! * [`backup::BackupService`] — applies ordered log entries, fences zombie
//!   epochs (§4.7), serves restore snapshots and §A.1 stale reads; built
//!   durable it write-ahead-logs every sync round to per-master AOFs and
//!   restores from them on cold restart (§5.4).
//! * [`client::CurpClient`] — the 1-RTT fast path: update RPC to the master
//!   in parallel with record RPCs to all `f` witnesses; falls back to the
//!   2/3-RTT sync path on rejection (§3.2.1). Also consistent reads from
//!   backups via witness probes (§A.1).
//! * [`coordinator::Coordinator`] — cluster configuration, witness-list
//!   versions (§3.6), RIFL leases, and recovery/migration orchestration —
//!   including whole-cluster power-loss restart
//!   ([`coordinator::Coordinator::restart_cluster`]).
//!
//! [`server::CurpServer`] composes master/backup/witness services into one
//! transport-facing handler, so any process can host any mix of roles;
//! [`server::CurpServer::new_durable`] makes both the backup AOFs and the
//! witness journal real on disk.

pub mod backup;
pub mod client;
pub mod coordinator;
pub mod master;
pub mod server;
pub mod snapshot;

pub use backup::BackupService;
pub use client::{ClientError, Completion, CurpClient, PipelineConfig, PipelinedClient};
pub use coordinator::{Coordinator, CoordinatorHandler};
pub use master::{Master, MasterConfig};
pub use server::{CurpServer, ServerHandler};
pub use snapshot::Snapshot;
