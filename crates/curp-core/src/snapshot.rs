//! Replica snapshots: the unit of state transfer for recovery and backup
//! (re)installation.
//!
//! A snapshot bundles a materialized [`Store`], the RIFL completion records
//! (which must travel with the data they describe — §3.3: "The IDs and
//! results are durably preserved with updated objects in an atomic fashion"),
//! and the log-entry sequence number the state corresponds to. Snapshots are
//! shipped as opaque bytes inside `Response::BackupData` /
//! `Request::BackupInstall`.

use bytes::{Buf, BufMut, Bytes};
use curp_proto::op::OpResult;
use curp_proto::types::ClientId;
use curp_proto::wire::{decode_seq, encode_seq, seq_encoded_len, Decode, DecodeError, Encode};
use curp_rifl::RiflTable;
use curp_storage::{Object, Store};

/// A serializable replica state.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Live objects, sorted by key.
    pub objects: Vec<(Bytes, Object)>,
    /// Version memory for deleted keys, sorted by key.
    pub dead_versions: Vec<(Bytes, u64)>,
    /// Exported RIFL table: `(client, first_incomplete, [(seq, result)])`.
    pub rifl: curp_rifl::table::RiflExport,
    /// Log-entry sequence number this state reflects (entries `< next_seq`
    /// are folded in).
    pub next_seq: u64,
}

impl Snapshot {
    /// Captures the state of a store + RIFL table at entry `next_seq`.
    pub fn capture(store: &Store, rifl: &RiflTable, next_seq: u64) -> Self {
        let (objects, dead_versions) = store.export();
        Snapshot { objects, dead_versions, rifl: rifl.export(), next_seq }
    }

    /// Assembles a snapshot from an already-exported store state (the
    /// sharded engine exports under its own shard locks) plus an exported
    /// RIFL table.
    pub fn from_parts(
        export: curp_storage::StoreExport,
        rifl: curp_rifl::table::RiflExport,
        next_seq: u64,
    ) -> Self {
        let (objects, dead_versions) = export;
        Snapshot { objects, dead_versions, rifl, next_seq }
    }

    /// Materializes the snapshot into a fresh store and RIFL table.
    pub fn restore(&self) -> (Store, RiflTable) {
        let store = Store::import(self.objects.clone(), self.dead_versions.clone());
        let rifl = RiflTable::import(self.rifl.clone());
        (store, rifl)
    }

    /// Encodes to the opaque wire blob.
    pub fn to_blob(&self) -> Bytes {
        self.to_bytes()
    }

    /// Decodes from the opaque wire blob.
    ///
    /// Deliberately uses the *copying* decode, not `from_bytes_shared`:
    /// restored objects are long-lived, and zero-copy windows would keep
    /// the entire transfer blob's allocation pinned for as long as any one
    /// restored value survives. Snapshot restore is a cold path; paying one
    /// copy here bounds memory at live-data size. (RPC decoding stays
    /// zero-copy — request payloads are short-lived.)
    pub fn from_blob(blob: &[u8]) -> Result<Self, DecodeError> {
        Self::from_bytes(blob)
    }
}

// Wire layout helper for the nested rifl rows.
struct RiflRow(ClientId, u64, Vec<(u64, OpResult)>);

impl Encode for RiflRow {
    fn encode(&self, buf: &mut impl BufMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        encode_seq(&self.2, buf);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + 8 + seq_encoded_len(&self.2)
    }
}

impl Decode for RiflRow {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(RiflRow(ClientId::decode(buf)?, u64::decode(buf)?, decode_seq(buf)?))
    }
}

impl Encode for Snapshot {
    fn encode(&self, buf: &mut impl BufMut) {
        encode_seq(&self.objects, buf);
        encode_seq(&self.dead_versions, buf);
        let rows: Vec<RiflRow> =
            self.rifl.iter().map(|(c, f, r)| RiflRow(*c, *f, r.clone())).collect();
        encode_seq(&rows, buf);
        self.next_seq.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        seq_encoded_len(&self.objects)
            + seq_encoded_len(&self.dead_versions)
            + 4
            + self
                .rifl
                .iter()
                .map(|(c, _, r)| c.encoded_len() + 8 + seq_encoded_len(r))
                .sum::<usize>()
            + 8
    }
}

impl Decode for Snapshot {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        let objects = decode_seq(buf)?;
        let dead_versions = decode_seq(buf)?;
        let rows: Vec<RiflRow> = decode_seq(buf)?;
        let rifl = rows.into_iter().map(|RiflRow(c, f, r)| (c, f, r)).collect();
        let next_seq = u64::decode(buf)?;
        Ok(Snapshot { objects, dead_versions, rifl, next_seq })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curp_proto::op::Op;
    use curp_proto::types::RpcId;
    use curp_rifl::CheckResult;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn capture_restore_roundtrip() {
        let mut store = Store::new();
        store.execute(&Op::Put { key: b("k"), value: b("v") });
        store.execute(&Op::Incr { key: b("c"), delta: 4 });
        store.mark_synced(store.log_head());
        let mut rifl = RiflTable::new();
        rifl.record(RpcId::new(ClientId(1), 3), OpResult::Written { version: 1 });

        let snap = Snapshot::capture(&store, &rifl, 2);
        let blob = snap.to_blob();
        let back = Snapshot::from_blob(&blob).unwrap();
        assert_eq!(back, snap);

        let (store2, rifl2) = back.restore();
        assert_eq!(
            store2.get_object(b"k").map(|o| o.value.clone()),
            store.get_object(b"k").map(|o| o.value.clone())
        );
        assert!(!store2.has_unsynced());
        assert_eq!(
            rifl2.check(RpcId::new(ClientId(1), 3)),
            CheckResult::Duplicate(OpResult::Written { version: 1 })
        );
        assert_eq!(back.next_seq, 2);
    }

    #[test]
    fn empty_snapshot_roundtrip() {
        let snap = Snapshot::capture(&Store::new(), &RiflTable::new(), 0);
        let back = Snapshot::from_blob(&snap.to_blob()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn identical_states_produce_identical_blobs() {
        let build = || {
            let mut store = Store::new();
            for i in 0..20 {
                store.execute(&Op::Put { key: b(&format!("k{i}")), value: b("v") });
            }
            let mut rifl = RiflTable::new();
            for i in 0..5 {
                rifl.record(RpcId::new(ClientId(i), 1), OpResult::Written { version: 1 });
            }
            Snapshot::capture(&store, &rifl, 20).to_blob()
        };
        assert_eq!(build(), build());
    }
}
