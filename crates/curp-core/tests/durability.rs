//! Unit-level durability tests for the backup role: the write-ahead AOF
//! discipline (DESIGN.md invariant 7), cold-restart restoration, install
//! persistence, and fencing tombstones.

use bytes::Bytes;
use curp_core::backup::{BackupService, SyncOutcome};
use curp_core::snapshot::Snapshot;
use curp_proto::message::LogEntry;
use curp_proto::op::{Op, OpResult};
use curp_proto::types::{ClientId, Epoch, MasterId, RpcId};
use curp_rifl::RiflTable;
use curp_storage::{Aof, Store, TempDir};

const M: MasterId = MasterId(1);

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn entry(seq: u64, key: &str, val: &str, version: u64) -> LogEntry {
    LogEntry {
        seq,
        rpc_id: Some(RpcId::new(ClientId(1), seq + 1)),
        op: Op::Put { key: b(key), value: b(val) },
        result: OpResult::Written { version },
    }
}

fn applied(outcome: SyncOutcome) -> u64 {
    match outcome {
        SyncOutcome::Applied { next_seq } => next_seq,
        other => panic!("expected Applied, got {other:?}"),
    }
}

#[test]
fn synced_entries_survive_service_restart() {
    let dir = TempDir::new("curp-durability-roundtrip").unwrap();
    {
        let bs = BackupService::durable(dir.path()).unwrap();
        assert!(bs.is_durable());
        let next = applied(bs.sync(M, Epoch(1), &[entry(0, "a", "1", 1), entry(1, "b", "2", 1)]));
        assert_eq!(next, 2);
    }
    // Cold restart: a fresh service over the same directory replays the AOF.
    let bs = BackupService::durable(dir.path()).unwrap();
    assert_eq!(bs.next_seq(M), Some(2), "replica not restored from AOF");
    assert_eq!(bs.read(M, &Op::Get { key: b("a") }), Some(OpResult::Value(Some(b("1")))));
    assert_eq!(bs.read(M, &Op::Get { key: b("b") }), Some(OpResult::Value(Some(b("2")))));
}

#[test]
fn ack_implies_entries_are_on_disk() {
    // Invariant 7's backup half: once sync() returns Applied, the entries
    // must already be readable from the AOF — drop the service (losing all
    // memory) immediately after the ack and reload from disk alone.
    let dir = TempDir::new("curp-durability-write-ahead").unwrap();
    let bs = BackupService::durable(dir.path()).unwrap();
    applied(bs.sync(M, Epoch(1), &[entry(0, "k", "v", 1)]));
    let loaded = Aof::load(&dir.path().join("master-1.aof")).unwrap();
    assert_eq!(loaded.entries.len(), 1, "ack preceded the AOF write");
    assert_eq!(loaded.entries[0], entry(0, "k", "v", 1));
    assert!(!loaded.truncated);
}

#[test]
fn buffered_out_of_order_entries_are_not_persisted_early() {
    let dir = TempDir::new("curp-durability-reorder").unwrap();
    {
        let bs = BackupService::durable(dir.path()).unwrap();
        // seq 1 arrives first: buffered, applied nowhere, persisted nowhere.
        applied(bs.sync(M, Epoch(1), &[entry(1, "b", "2", 1)]));
        assert!(Aof::load(&dir.path().join("master-1.aof")).unwrap().entries.is_empty());
        // seq 0 fills the gap: both go to disk in seq order, one batch.
        let next = applied(bs.sync(M, Epoch(1), &[entry(0, "a", "1", 1)]));
        assert_eq!(next, 2);
    }
    let loaded = Aof::load(&dir.path().join("master-1.aof")).unwrap();
    let seqs: Vec<u64> = loaded.entries.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![0, 1], "AOF must hold the contiguous run in order");
    // A restart sees the full, ordered state.
    let bs = BackupService::durable(dir.path()).unwrap();
    assert_eq!(bs.next_seq(M), Some(2));
}

#[test]
fn duplicate_resend_is_not_appended_twice() {
    let dir = TempDir::new("curp-durability-dup").unwrap();
    {
        let bs = BackupService::durable(dir.path()).unwrap();
        applied(bs.sync(M, Epoch(1), &[entry(0, "a", "1", 1)]));
        // Retried sync re-sends entry 0 alongside entry 1.
        applied(bs.sync(M, Epoch(1), &[entry(0, "a", "1", 1), entry(1, "a", "2", 2)]));
    }
    let loaded = Aof::load(&dir.path().join("master-1.aof")).unwrap();
    assert_eq!(loaded.entries.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1]);
    let bs = BackupService::durable(dir.path()).unwrap();
    assert_eq!(bs.read(M, &Op::Get { key: b("a") }), Some(OpResult::Value(Some(b("2")))));
}

#[test]
fn install_persists_snapshot_and_later_syncs_extend_it() {
    let dir = TempDir::new("curp-durability-install").unwrap();
    let blob_next;
    {
        // Materialize some state to snapshot.
        let mut store = Store::new();
        store.execute(&Op::Put { key: b("base"), value: b("snap") });
        let mut rifl = RiflTable::new();
        rifl.record(RpcId::new(ClientId(9), 1), OpResult::Written { version: 1 });
        let snap = Snapshot::capture(&store, &rifl, 5);
        blob_next = 5u64;

        let bs = BackupService::durable(dir.path()).unwrap();
        assert!(bs.install(M, Epoch(3), blob_next, &snap).unwrap());
        // The replica continues from the snapshot's next_seq.
        let next = applied(bs.sync(M, Epoch(3), &[entry(5, "after", "x", 1)]));
        assert_eq!(next, 6);
    }
    let bs = BackupService::durable(dir.path()).unwrap();
    assert_eq!(bs.next_seq(M), Some(6));
    assert_eq!(bs.read(M, &Op::Get { key: b("base") }), Some(OpResult::Value(Some(b("snap")))));
    assert_eq!(bs.read(M, &Op::Get { key: b("after") }), Some(OpResult::Value(Some(b("x")))));
    // The persisted epoch still fences the pre-install incarnation.
    assert!(matches!(bs.sync(M, Epoch(2), &[entry(6, "z", "z", 1)]), SyncOutcome::Fenced { .. }));
}

#[test]
fn torn_aof_tail_is_dropped_on_restore() {
    let dir = TempDir::new("curp-durability-torn").unwrap();
    {
        let bs = BackupService::durable(dir.path()).unwrap();
        applied(bs.sync(M, Epoch(1), &[entry(0, "a", "1", 1), entry(1, "b", "2", 1)]));
    }
    // Power fails mid-append of a *third* entry: tear the file.
    let path = dir.path().join("master-1.aof");
    let raw = std::fs::read(&path).unwrap();
    let mut torn = raw.clone();
    let tail = entry(2, "c", "3", 1);
    let mut buf = bytes::BytesMut::new();
    curp_proto::frame::write_frame(&curp_proto::wire::Encode::to_bytes(&tail), &mut buf);
    torn.extend_from_slice(&buf[..buf.len() / 2]);
    std::fs::write(&path, &torn).unwrap();

    let bs = BackupService::durable(dir.path()).unwrap();
    assert_eq!(bs.next_seq(M), Some(2), "torn tail must be dropped, prefix kept");
    assert_eq!(bs.read(M, &Op::Get { key: b("c") }), Some(OpResult::Value(None)));

    // The restore must have *cut* the torn bytes, not merely skipped them:
    // syncing new entries appends to the file, and if the tear were still
    // on disk the new frames would hide behind its stale length prefix and
    // poison this second restart.
    applied(bs.sync(M, Epoch(1), &[entry(2, "c", "3", 1), entry(3, "d", "4", 1)]));
    drop(bs);
    let bs = BackupService::durable(dir.path()).unwrap();
    assert_eq!(bs.next_seq(M), Some(4), "entries appended after a tear must survive");
    assert_eq!(bs.read(M, &Op::Get { key: b("c") }), Some(OpResult::Value(Some(b("3")))));
    assert_eq!(bs.read(M, &Op::Get { key: b("d") }), Some(OpResult::Value(Some(b("4")))));
}

#[test]
fn dropped_replica_keeps_its_fence_and_loses_its_data() {
    let dir = TempDir::new("curp-durability-tombstone").unwrap();
    let bs = BackupService::durable(dir.path()).unwrap();
    applied(bs.sync(M, Epoch(4), &[entry(0, "a", "1", 1)]));
    assert!(dir.path().join("master-1.aof").exists());

    bs.drop_replica(M);
    assert!(!dir.path().join("master-1.aof").exists(), "the AOF must be deleted");
    // The fencing epoch survives the drop: a zombie of the dead incarnation
    // is still rejected (§4.7)…
    assert!(matches!(bs.sync(M, Epoch(3), &[entry(0, "a", "1", 1)]), SyncOutcome::Fenced { .. }));
    // …including across this backup's own restart: the tombstone persists
    // the epoch as an empty snapshot, so the zombie stays fenced while the
    // data stays gone.
    drop(bs);
    let bs = BackupService::durable(dir.path()).unwrap();
    assert!(matches!(bs.sync(M, Epoch(3), &[entry(0, "a", "1", 1)]), SyncOutcome::Fenced { .. }));
    assert_eq!(bs.next_seq(M), Some(0), "tombstone carries no data");
    assert_eq!(bs.read(M, &Op::Get { key: b("a") }), Some(OpResult::Value(None)));
}

#[test]
fn set_epoch_fence_survives_backup_restart() {
    // The §4.7 hole this pins shut: the coordinator fences every backup
    // *before* reading any of them for recovery. If a backup crashes and
    // cold-restarts inside that window, a fence that lived only in memory is
    // gone — and the deposed master's next sync would be accepted, diverging
    // the replica from the recovered successor. The fence must hit disk in
    // set_epoch itself.
    let dir = TempDir::new("curp-durability-fence").unwrap();
    {
        let bs = BackupService::durable(dir.path()).unwrap();
        applied(bs.sync(M, Epoch(1), &[entry(0, "a", "1", 1)]));
        // Coordinator fences ahead of recovery (§4.7 step 0)…
        bs.set_epoch(M, Epoch(7));
        // …and this backup dies before the recovery install reaches it.
    }
    let bs = BackupService::durable(dir.path()).unwrap();
    assert_eq!(bs.next_seq(M), Some(1), "data must survive alongside the fence");
    assert!(
        matches!(bs.sync(M, Epoch(1), &[entry(1, "a", "2", 2)]), SyncOutcome::Fenced { .. }),
        "zombie sync re-admitted: the fence did not survive the restart"
    );
    // The recovered successor (fenced epoch or later) still syncs fine.
    applied(bs.sync(M, Epoch(7), &[entry(1, "a", "2", 2)]));
}

#[test]
fn fence_without_any_sync_survives_restart() {
    // A master that crashed before its first sync has no replica, no AOF, no
    // snapshot — only the fence file says anything about it on disk.
    let dir = TempDir::new("curp-durability-fence-bare").unwrap();
    {
        let bs = BackupService::durable(dir.path()).unwrap();
        bs.set_epoch(M, Epoch(3));
    }
    let bs = BackupService::durable(dir.path()).unwrap();
    assert!(
        matches!(bs.sync(M, Epoch(2), &[entry(0, "a", "1", 1)]), SyncOutcome::Fenced { .. }),
        "bare fence lost across restart"
    );
}

#[test]
fn restore_from_aof_rejects_memory_only_service() {
    let bs = BackupService::new();
    assert!(!bs.is_durable());
    assert!(bs.restore_from_aof(M).is_err());
    assert!(bs.restore_all_from_disk().unwrap().is_empty());
}
