//! End-to-end protocol tests on the in-memory network: normal operation,
//! conflicts, crash recovery, reconfiguration, migration, zombies, leases
//! and consistent backup reads.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use curp_core::client::{ClientConfig, CurpClient, PipelineConfig, PipelinedClient};
use curp_core::coordinator::Coordinator;
use curp_core::master::MasterConfig;
use curp_core::server::{CurpServer, ServerHandler};
use curp_proto::cluster::HashRange;
use curp_proto::message::{Request, Response};
use curp_proto::op::{Op, OpResult};
use curp_proto::types::{MasterId, ServerId};
use curp_transport::MemNetwork;
use curp_witness::cache::CacheConfig;

const COORD: ServerId = ServerId(1000);

struct TestCluster {
    net: MemNetwork,
    coord: Arc<Coordinator>,
    servers: Vec<Arc<CurpServer>>,
    master_id: MasterId,
}

impl TestCluster {
    /// Builds one partition with master on `s1`, and `f` backup+witness
    /// co-hosted servers on `s2..`.
    async fn new(f: usize, master_cfg: MasterConfig) -> TestCluster {
        Self::with_lease_ttl(f, master_cfg, 60_000).await
    }

    async fn with_lease_ttl(f: usize, master_cfg: MasterConfig, ttl_ms: u64) -> TestCluster {
        let net = MemNetwork::new(42);
        net.set_rpc_timeout(Duration::from_millis(100));
        let net_for_factory = net.clone();
        let coord =
            Coordinator::new(Box::new(move |id| net_for_factory.client(id)), master_cfg, ttl_ms);
        net.add_simple_server(
            COORD,
            Arc::new(curp_core::coordinator::CoordinatorHandler(Arc::clone(&coord))),
        );
        // Servers: s1 = master; s2..=s1+f host backup+witness; plus two
        // spares (s8, s9) for recovery/migration targets.
        let mut servers = Vec::new();
        for i in 1..=(1 + f).max(1) + 2 {
            let s = CurpServer::new(ServerId(i as u64), CacheConfig::default());
            net.add_simple_server(s.id(), Arc::new(ServerHandler(Arc::clone(&s))));
            coord.register_server(Arc::clone(&s));
            servers.push(s);
        }
        let backups: Vec<ServerId> = (2..2 + f).map(|i| ServerId(i as u64)).collect();
        let witnesses = backups.clone();
        let master_id = coord
            .create_partition(ServerId(1), backups, witnesses, HashRange::FULL)
            .await
            .expect("create partition");
        TestCluster { net, coord, servers, master_id }
    }

    async fn client(&self) -> CurpClient {
        CurpClient::connect(self.net.client(ServerId(500)), COORD, ClientConfig::default())
            .await
            .expect("connect")
    }

    fn server(&self, i: usize) -> &Arc<CurpServer> {
        &self.servers[i - 1]
    }
}

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn put(k: &str, v: &str) -> Op {
    Op::Put { key: b(k), value: b(v) }
}

fn get(k: &str) -> Op {
    Op::Get { key: b(k) }
}

/// Slow-syncing config: nothing reaches the backups unless forced, which
/// lets tests pin down which path served an operation.
fn lazy_cfg() -> MasterConfig {
    MasterConfig {
        batch_size: 10_000,
        sync_interval: Duration::from_secs(3600),
        ..MasterConfig::default()
    }
}

#[tokio::test(start_paused = true)]
async fn fast_path_put_get() {
    let cluster = TestCluster::new(3, lazy_cfg()).await;
    let client = cluster.client().await;
    for i in 0..10 {
        let r = client.update(put(&format!("k{i}"), "v")).await.unwrap();
        assert_eq!(r, OpResult::Written { version: 1 });
    }
    // All commutative, so every op used the 1-RTT fast path.
    assert_eq!(client.stats.fast_path.load(std::sync::atomic::Ordering::Relaxed), 10);
    assert_eq!(client.stats.synced_by_master.load(std::sync::atomic::Ordering::Relaxed), 0);
    // Witnesses hold all 10 requests (never synced, never gc'd).
    let w = cluster.server(2).witness();
    assert_eq!(w.occupancy(cluster.master_id), 10);
    // Reads see the writes (this read of an unsynced value forces a sync).
    let r = client.read(get("k3")).await.unwrap();
    assert_eq!(r, OpResult::Value(Some(b("v"))));
}

#[tokio::test(start_paused = true)]
async fn conflicting_write_takes_synced_path() {
    let cluster = TestCluster::new(3, lazy_cfg()).await;
    let client = cluster.client().await;
    client.update(put("x", "1")).await.unwrap();
    // Second write to x touches the unsynced x: master must sync first and
    // tag the response "synced" (client then skips its own sync RPC).
    client.update(put("x", "2")).await.unwrap();
    assert_eq!(client.stats.synced_by_master.load(std::sync::atomic::Ordering::Relaxed), 1);
    assert_eq!(client.stats.explicit_sync.load(std::sync::atomic::Ordering::Relaxed), 0);
    // The sync made it to the backups.
    let backup = cluster.server(2).backup();
    assert_eq!(backup.next_seq(cluster.master_id), Some(2));
    // And the witnesses were garbage-collected.
    tokio::time::sleep(Duration::from_millis(50)).await; // let gc RPCs land
    assert_eq!(cluster.server(2).witness().occupancy(cluster.master_id), 0);
}

#[tokio::test(start_paused = true)]
async fn read_of_unsynced_value_forces_sync() {
    let cluster = TestCluster::new(3, lazy_cfg()).await;
    let client = cluster.client().await;
    client.update(put("x", "1")).await.unwrap();
    assert_eq!(cluster.server(2).backup().next_seq(cluster.master_id), None);
    // §3.2.3: "read x" after speculative "x <- 1" must not externalize an
    // unsynced value.
    let r = client.read(get("x")).await.unwrap();
    assert_eq!(r, OpResult::Value(Some(b("1"))));
    assert_eq!(cluster.server(2).backup().next_seq(cluster.master_id), Some(1));
}

#[tokio::test(start_paused = true)]
async fn crash_recovery_preserves_completed_updates() {
    let cluster = TestCluster::new(3, lazy_cfg()).await;
    let client = cluster.client().await;
    // Completed on the fast path only: witnesses + master, NOT backups.
    client.update(put("k", "precious")).await.unwrap();
    assert_eq!(cluster.server(2).backup().next_seq(cluster.master_id), None);

    // Master dies.
    cluster.net.crash(ServerId(1));
    cluster.server(1).seal_master();

    // Coordinator recovers onto spare server s8-ish (index len-1).
    let new_srv = cluster.servers.last().unwrap().id();
    let new_id = cluster.coord.recover_master(cluster.master_id, new_srv).await.unwrap();
    assert_ne!(new_id, cluster.master_id);

    // The client's cached config is stale; it transparently refreshes.
    let r = client.read(get("k")).await.unwrap();
    assert_eq!(r, OpResult::Value(Some(b("precious"))), "witness replay must restore the write");

    // And new updates work against the new master.
    client.update(put("k2", "after")).await.unwrap();
    assert_eq!(client.read(get("k2")).await.unwrap(), OpResult::Value(Some(b("after"))));
}

#[tokio::test(start_paused = true)]
async fn recovery_filters_duplicates_with_rifl() {
    let cluster = TestCluster::new(3, lazy_cfg()).await;
    let client = cluster.client().await;
    // INCR makes re-execution visible.
    let r = client.update(Op::Incr { key: b("ctr"), delta: 5 }).await.unwrap();
    assert_eq!(r, OpResult::Counter(5));
    // Force a sync so the op is BOTH on backups and on witnesses (gc is part
    // of the same sync round; freeze the witness before it happens by
    // crashing the master right away).
    let master = cluster.server(1).master().unwrap();
    let master2 = Arc::clone(&master);
    // Crash after sync to backups but simulate the witness gc being lost:
    // run the sync, then re-record the request on witnesses? Instead, crash
    // BEFORE sync: the op lives only on witnesses; recovery replays it once.
    drop(master2);
    cluster.net.crash(ServerId(1));
    master.seal();

    let new_srv = cluster.servers.last().unwrap().id();
    cluster.coord.recover_master(cluster.master_id, new_srv).await.unwrap();
    // Exactly-once: the counter must be 5, not 10.
    let r = client.read(get("ctr")).await.unwrap();
    assert_eq!(r, OpResult::Value(Some(b("5"))));
}

#[tokio::test(start_paused = true)]
async fn replay_after_partial_sync_does_not_duplicate() {
    // The op reaches the backups AND stays in a witness (its gc never
    // happened because the master crashed between sync and gc). Recovery
    // must filter the witness replay via RIFL (§3.3).
    let cluster = TestCluster::new(3, lazy_cfg()).await;
    let client = cluster.client().await;
    assert_eq!(
        client.update(Op::Incr { key: b("ctr"), delta: 7 }).await.unwrap(),
        OpResult::Counter(7)
    );
    let master = cluster.server(1).master().unwrap();
    // Freeze witness s2 (recovery mode) so the gc that accompanies the next
    // sync is ignored there — modeling gc racing the crash.
    cluster.server(2).witness().get_recovery_data(cluster.master_id);
    assert!(master.sync().await, "sync to backups must succeed");
    // s2 still holds the request; the sync itself reached the backups.
    assert_eq!(cluster.server(2).witness().occupancy(cluster.master_id), 1);
    assert_eq!(cluster.server(2).backup().next_seq(cluster.master_id), Some(1));

    cluster.net.crash(ServerId(1));
    master.seal();
    let new_srv = cluster.servers.last().unwrap().id();
    cluster.coord.recover_master(cluster.master_id, new_srv).await.unwrap();
    let r = client.read(get("ctr")).await.unwrap();
    assert_eq!(r, OpResult::Value(Some(b("7"))), "witness replay must be RIFL-filtered");
}

#[tokio::test(start_paused = true)]
async fn duplicate_rpc_after_recovery_returns_original_result() {
    let cluster = TestCluster::new(3, lazy_cfg()).await;
    let client = cluster.client().await;
    assert_eq!(
        client.update(Op::Incr { key: b("ctr"), delta: 5 }).await.unwrap(),
        OpResult::Counter(5)
    );
    cluster.net.crash(ServerId(1));
    cluster.server(1).seal_master();
    let new_srv = cluster.servers.last().unwrap().id();
    let _ = cluster.coord.recover_master(cluster.master_id, new_srv).await.unwrap();

    // Replay the exact same RPC id against the new master: it must answer
    // from the completion record, not re-execute.
    let cfg = cluster.coord.config();
    let part = &cfg.partitions[0];
    let rsp = cluster
        .net
        .client(ServerId(501))
        .call(
            part.master,
            Request::ClientUpdate {
                rpc_id: curp_proto::types::RpcId::new(curp_proto::types::ClientId(1), 1),
                first_incomplete: 0,
                witness_list_version: part.witness_list_version,
                op: Op::Incr { key: b("ctr"), delta: 5 },
            },
        )
        .await
        .unwrap();
    match rsp {
        Response::Update { result, .. } => assert_eq!(result, OpResult::Counter(5)),
        other => panic!("unexpected {other:?}"),
    }
}

#[tokio::test(start_paused = true)]
async fn witness_replacement_bumps_version_and_fences_stale_clients() {
    let cluster = TestCluster::new(3, lazy_cfg()).await;
    let client = cluster.client().await;
    client.update(put("a", "1")).await.unwrap();

    // Replace witness s2 with spare s6 (witness crash scenario, §3.6).
    let spare = cluster.servers[cluster.servers.len() - 2].id();
    cluster.coord.replace_witness(cluster.master_id, ServerId(2), spare).await.unwrap();

    // The client still holds the old witness list; its next update gets
    // StaleWitnessList, refreshes, and succeeds on retry.
    client.update(put("b", "2")).await.unwrap();
    assert!(client.stats.restarts.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    assert_eq!(client.read(get("b")).await.unwrap(), OpResult::Value(Some(b("2"))));

    // The master synced before installing the new list, so "a" is durable.
    assert!(cluster.server(2).backup().next_seq(cluster.master_id).unwrap_or(0) >= 1);
}

#[tokio::test(start_paused = true)]
async fn zombie_master_is_fenced_after_recovery() {
    let cluster = TestCluster::new(3, lazy_cfg()).await;
    let client = cluster.client().await;
    client.update(put("k", "v1")).await.unwrap();

    // The master is partitioned away (still running = zombie), declared
    // dead, and recovered elsewhere.
    cluster.net.crash(ServerId(1));
    let new_srv = cluster.servers.last().unwrap().id();
    cluster.coord.recover_master(cluster.master_id, new_srv).await.unwrap();

    // The zombie comes back and tries to sync its speculative tail.
    cluster.net.restart(ServerId(1));
    let zombie = cluster.server(1).master().unwrap();
    assert!(!zombie.sync().await, "zombie sync must be rejected by fenced backups");
    assert!(zombie.is_sealed(), "zombie must seal itself after fencing");

    // Clients keep working against the new master.
    client.update(put("k", "v2")).await.unwrap();
    assert_eq!(client.read(get("k")).await.unwrap(), OpResult::Value(Some(b("v2"))));
}

#[tokio::test(start_paused = true)]
async fn migration_splits_ownership() {
    let cluster = TestCluster::new(3, lazy_cfg()).await;
    let client = cluster.client().await;
    // Write a spread of keys.
    for i in 0..40 {
        client.update(put(&format!("mkey{i}"), "v")).await.unwrap();
    }
    // Split the hash space in half; migrate the upper half to the spare.
    let target = cluster.servers.last().unwrap().id();
    let backups: Vec<ServerId> = vec![ServerId(2), ServerId(3), ServerId(4)];
    let new_id = cluster
        .coord
        .migrate(cluster.master_id, 1 << 63, target, backups.clone(), backups)
        .await
        .unwrap();
    assert_ne!(new_id, cluster.master_id);

    // Every key is still readable (client refreshes config as needed) and
    // writable on whichever partition now owns it.
    for i in 0..40 {
        let k = format!("mkey{i}");
        assert_eq!(
            client.read(get(&k)).await.unwrap(),
            OpResult::Value(Some(b("v"))),
            "lost {k} in migration"
        );
        client.update(put(&k, "v2")).await.unwrap();
    }
    let cfg = cluster.coord.config();
    assert_eq!(cfg.partitions.len(), 2);
}

#[tokio::test(start_paused = true)]
async fn consistent_backup_reads() {
    let cluster = TestCluster::new(3, lazy_cfg()).await;
    let client = cluster.client().await;
    client.update(put("k", "v1")).await.unwrap();

    // The update is not yet on backups; the witness probe detects the
    // pending write and redirects to the master (§A.1) — which must sync
    // before serving the read, so the value read is durable.
    let r = client.read_nearby(get("k"), 0).await.unwrap();
    assert_eq!(r, OpResult::Value(Some(b("v1"))));
    assert_eq!(cluster.server(2).backup().next_seq(cluster.master_id), Some(1));

    // After sync + witness gc the probe passes and the backup serves the
    // read directly.
    tokio::time::sleep(Duration::from_millis(50)).await; // gc delivery
    assert_eq!(cluster.server(2).witness().occupancy(cluster.master_id), 0);
    let r = client.read_nearby(get("k"), 0).await.unwrap();
    assert_eq!(r, OpResult::Value(Some(b("v1"))));
}

#[tokio::test(start_paused = true)]
async fn lease_expiry_drops_completion_records_after_sync() {
    let cluster = TestCluster::with_lease_ttl(3, lazy_cfg(), 1_000).await;
    let client = cluster.client().await;
    client.update(put("k", "v")).await.unwrap();
    // Entry is pending (lazy sync). Let the lease expire and tick.
    tokio::time::sleep(Duration::from_millis(1_500)).await;
    cluster.coord.tick_leases().await;
    // The master synced before expiring (§4.8): data durable on backups.
    assert_eq!(cluster.server(2).backup().next_seq(cluster.master_id), Some(1));
    // The client's records are gone: a duplicate of its rpc is now Stale.
    let cfg = cluster.coord.config();
    let part = &cfg.partitions[0];
    let rsp = cluster
        .net
        .client(ServerId(502))
        .call(
            part.master,
            Request::ClientUpdate {
                rpc_id: curp_proto::types::RpcId::new(curp_proto::types::ClientId(1), 1),
                first_incomplete: 0,
                witness_list_version: part.witness_list_version,
                op: put("k", "v"),
            },
        )
        .await
        .unwrap();
    assert!(matches!(rsp, Response::Retry { .. }), "expired client must be ignored: {rsp:?}");
}

#[tokio::test(start_paused = true)]
async fn unreplicated_f0_still_works() {
    let cluster = TestCluster::new(0, lazy_cfg()).await;
    let client = cluster.client().await;
    client.update(put("k", "v")).await.unwrap();
    assert_eq!(client.read(get("k")).await.unwrap(), OpResult::Value(Some(b("v"))));
}

#[tokio::test(start_paused = true)]
async fn sync_every_op_mode_always_responds_synced() {
    let cfg = MasterConfig { sync_every_op: true, ..lazy_cfg() };
    let cluster = TestCluster::new(3, cfg).await;
    let client = cluster.client().await;
    for i in 0..5 {
        client.update(put(&format!("k{i}"), "v")).await.unwrap();
    }
    assert_eq!(client.stats.synced_by_master.load(std::sync::atomic::Ordering::Relaxed), 5);
    assert_eq!(cluster.server(2).backup().next_seq(cluster.master_id), Some(5));
}

#[tokio::test(start_paused = true)]
async fn batch_size_triggers_background_sync() {
    let cfg = MasterConfig {
        batch_size: 5,
        sync_interval: Duration::from_secs(3600),
        ..MasterConfig::default()
    };
    let cluster = TestCluster::new(3, cfg).await;
    let client = cluster.client().await;
    for i in 0..5 {
        client.update(put(&format!("kk{i}"), "v")).await.unwrap();
    }
    // The 5th op filled the batch; the background syncer flushes.
    tokio::time::sleep(Duration::from_millis(100)).await;
    assert_eq!(cluster.server(2).backup().next_seq(cluster.master_id), Some(5));
    // Witnesses drained by gc.
    assert_eq!(cluster.server(2).witness().occupancy(cluster.master_id), 0);
}

#[tokio::test(start_paused = true)]
async fn hotkey_heuristic_syncs_after_repeated_updates() {
    // Write the same key twice with a commutative gap between: the second
    // write conflicts (2-RTT). The hot-key heuristic then syncs eagerly, so
    // a *third* write shortly after is commutative again (1-RTT).
    let cfg = MasterConfig { hotkey_sync: true, ..lazy_cfg() };
    let cluster = TestCluster::new(3, cfg).await;
    let client = cluster.client().await;
    client.update(put("hot", "1")).await.unwrap();
    client.update(put("hot", "2")).await.unwrap(); // conflict -> synced
    tokio::time::sleep(Duration::from_millis(100)).await;
    client.update(put("hot", "3")).await.unwrap();
    tokio::time::sleep(Duration::from_millis(100)).await;
    // Third write found "hot" synced (the heuristic flushed it eagerly after
    // the second conflicting write).
    let fast = client.stats.fast_path.load(std::sync::atomic::Ordering::Relaxed);
    assert!(fast >= 2, "expected first and third writes on the fast path, got {fast}");
}

#[tokio::test(start_paused = true)]
async fn message_loss_is_masked_by_retries() {
    let cluster = TestCluster::new(3, MasterConfig::default()).await;
    cluster.net.set_drop_rate(0.05);
    let client = cluster.client().await;
    for i in 0..30 {
        let r = client.update(put(&format!("lossy{i}"), "v")).await;
        assert!(r.is_ok(), "op {i} failed: {r:?}");
    }
    cluster.net.set_drop_rate(0.0);
    for i in 0..30 {
        assert_eq!(
            client.read(get(&format!("lossy{i}"))).await.unwrap(),
            OpResult::Value(Some(b("v")))
        );
    }
}

// ---- pipelined client -------------------------------------------------------

#[tokio::test(start_paused = true)]
async fn pipelined_disjoint_ops_all_take_fast_path_in_one_frame() {
    let cluster = TestCluster::new(3, lazy_cfg()).await;
    let client = Arc::new(cluster.client().await);
    let pipe = PipelinedClient::new(Arc::clone(&client), PipelineConfig::default());
    // 16 disjoint-key puts submitted back to back: the flusher drains them
    // into one Batch frame (window and max_batch are both 16).
    let mut completions = Vec::new();
    for i in 0..16 {
        completions.push(pipe.submit(put(&format!("p{i}"), "v")).await.unwrap());
    }
    for c in completions {
        assert_eq!(c.await.unwrap(), OpResult::Written { version: 1 });
    }
    assert_eq!(client.stats.fast_path.load(std::sync::atomic::Ordering::Relaxed), 16);
    // The master saw ONE message for all 16 ops (the batch frame).
    let master_stats = cluster.net.stats(ServerId(1)).unwrap();
    assert_eq!(master_stats.requests_in.load(std::sync::atomic::Ordering::Relaxed), 1);
    // Every witness holds all 16 records, each under its own footprint.
    assert_eq!(cluster.server(2).witness().occupancy(cluster.master_id), 16);
    // And the data is readable.
    assert_eq!(client.read(get("p7")).await.unwrap(), OpResult::Value(Some(b("v"))));
}

#[tokio::test(start_paused = true)]
async fn pipelined_conflicting_ops_complete_with_consistent_versions() {
    let cluster = TestCluster::new(3, lazy_cfg()).await;
    let client = Arc::new(cluster.client().await);
    let pipe = PipelinedClient::new(Arc::clone(&client), PipelineConfig::default());
    // 8 non-commuting writes to one key flushed together: the master orders
    // them, witnesses reject the conflicts, and every op still completes
    // durably through the synced/sync paths.
    let mut completions = Vec::new();
    for i in 0..8 {
        completions.push(pipe.submit(put("hot", &format!("v{i}"))).await.unwrap());
    }
    let mut versions = Vec::new();
    for c in completions {
        match c.await.unwrap() {
            OpResult::Written { version } => versions.push(version),
            other => panic!("unexpected result {other:?}"),
        }
    }
    versions.sort_unstable();
    assert_eq!(versions, (1..=8).collect::<Vec<u64>>(), "one version per executed op");
    let s = &client.stats;
    let total = s.fast_path.load(std::sync::atomic::Ordering::Relaxed)
        + s.synced_by_master.load(std::sync::atomic::Ordering::Relaxed)
        + s.explicit_sync.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(total, 8, "every op resolved through exactly one path");
    // The conflicts forced durability: the backups saw a sync.
    assert!(cluster.server(2).backup().next_seq(cluster.master_id).unwrap_or(0) >= 1);
}

#[tokio::test(start_paused = true)]
async fn pipelined_window_applies_backpressure() {
    let cluster = TestCluster::new(3, lazy_cfg()).await;
    cluster
        .net
        .set_default_latency(Arc::new(curp_transport::latency::Fixed(Duration::from_millis(10))));
    let client = Arc::new(cluster.client().await);
    let pipe = PipelinedClient::new(client, PipelineConfig { window: 2, max_batch: 2 });
    let t0 = tokio::time::Instant::now();
    let c1 = pipe.submit(put("a", "1")).await.unwrap();
    let c2 = pipe.submit(put("b", "2")).await.unwrap();
    assert_eq!(t0.elapsed(), Duration::ZERO, "submits inside the window never wait");
    // Window full: the third submit must wait for a completion, which takes
    // at least one 10 ms-per-hop round trip.
    let c3 = pipe.submit(put("c", "3")).await.unwrap();
    assert!(t0.elapsed() >= Duration::from_millis(20), "blocked {:?}", t0.elapsed());
    for c in [c1, c2, c3] {
        assert!(c.await.is_ok());
    }
}

#[tokio::test(start_paused = true)]
async fn pipelined_mixed_reads_and_writes_resolve_positionally() {
    let cluster = TestCluster::new(3, lazy_cfg()).await;
    let client = Arc::new(cluster.client().await);
    let pipe = PipelinedClient::new(Arc::clone(&client), PipelineConfig::default());
    pipe.update(put("m", "before")).await.unwrap();
    // A read and two writes of other keys pipelined together: each completes
    // with its own result.
    let w1 = pipe.submit(put("n", "1")).await.unwrap();
    let r = pipe.submit(get("m")).await.unwrap();
    let w2 = pipe.submit(put("o", "2")).await.unwrap();
    assert_eq!(w1.await.unwrap(), OpResult::Written { version: 1 });
    assert_eq!(r.await.unwrap(), OpResult::Value(Some(b("before"))));
    assert_eq!(w2.await.unwrap(), OpResult::Written { version: 1 });
    // The pipelined reads acknowledged their RIFL ids: a later op's
    // piggybacked watermark lets the master GC everything completed.
    assert!(client.stats.fast_path.load(std::sync::atomic::Ordering::Relaxed) >= 3);
}

#[tokio::test(start_paused = true)]
async fn pipelined_completions_survive_master_crash_recovery() {
    let cluster = TestCluster::new(3, lazy_cfg()).await;
    let client = Arc::new(cluster.client().await);
    let pipe = PipelinedClient::new(Arc::clone(&client), PipelineConfig::default());
    let mut completions = Vec::new();
    for i in 0..6 {
        completions.push(pipe.submit(put(&format!("cr{i}"), "v")).await.unwrap());
    }
    for c in completions {
        assert!(c.await.is_ok());
    }
    // Crash the master and recover onto a spare; the pipelined writes were
    // recorded on witnesses, so the new master must serve all of them.
    cluster.net.crash(ServerId(1));
    cluster.server(1).seal_master();
    cluster.coord.recover_master(cluster.master_id, ServerId(5)).await.expect("recover");
    client.refresh_config().await.unwrap();
    for i in 0..6 {
        assert_eq!(
            client.read(get(&format!("cr{i}"))).await.unwrap(),
            OpResult::Value(Some(b("v"))),
            "cr{i} lost in recovery"
        );
    }
}
