//! Focused unit tests of the master's decision logic, using a minimal
//! in-process loopback transport (no coordinator, no client library): every
//! path of `handle_update`/`handle_read` and the sync/gc machinery.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use curp_core::backup::BackupService;
use curp_core::master::{Master, MasterConfig, MasterSeed};
use curp_proto::cluster::HashRange;
use curp_proto::message::{Request, Response};
use curp_proto::op::{Op, OpResult};
use curp_proto::types::{ClientId, Epoch, MasterId, RpcId, ServerId, WitnessListVersion};
use curp_transport::rpc::{BoxFuture, RpcClient};
use curp_witness::cache::CacheConfig;
use curp_witness::WitnessService;

const M: MasterId = MasterId(7);
const BACKUP: ServerId = ServerId(2);
const WITNESS: ServerId = ServerId(3);
const WLV: WitnessListVersion = WitnessListVersion(1);

/// Loopback transport: routes master-originated RPCs straight into local
/// backup/witness services, counting calls.
struct Loopback {
    backup: Arc<BackupService>,
    witness: Arc<WitnessService>,
}

impl RpcClient for Loopback {
    fn call(
        &self,
        to: ServerId,
        req: Request,
    ) -> BoxFuture<'static, Result<Response, curp_transport::RpcError>> {
        let backup = Arc::clone(&self.backup);
        let witness = Arc::clone(&self.witness);
        Box::pin(async move {
            Ok(match to {
                BACKUP => backup.handle_request(&req),
                WITNESS => witness.handle_request(&req),
                other => return Err(curp_transport::RpcError::Unreachable { to: other }),
            })
        })
    }
}

struct Rig {
    master: Arc<Master>,
    backup: Arc<BackupService>,
    witness: Arc<WitnessService>,
}

fn rig(cfg: MasterConfig) -> Rig {
    let backup = Arc::new(BackupService::new());
    let witness = Arc::new(WitnessService::new(CacheConfig::default()));
    let master = Master::new(
        MasterSeed {
            id: M,
            epoch: Epoch(1),
            backups: vec![BACKUP],
            witnesses: vec![WITNESS],
            wl_version: WLV,
            range: HashRange::FULL,
        },
        cfg,
        Arc::new(Loopback { backup: Arc::clone(&backup), witness: Arc::clone(&witness) }),
    );
    witness.start(M);
    Rig { master, backup, witness }
}

fn lazy() -> MasterConfig {
    MasterConfig {
        batch_size: 10_000,
        sync_interval: Duration::from_secs(3600),
        ..MasterConfig::default()
    }
}

fn b(s: &str) -> Bytes {
    Bytes::from(s.to_owned())
}

fn rid(c: u64, s: u64) -> RpcId {
    RpcId::new(ClientId(c), s)
}

async fn put(r: &Rig, id: RpcId, key: &str, value: &str) -> Response {
    r.master.handle_update(id, 0, WLV, Op::Put { key: b(key), value: b(value) }).await
}

#[tokio::test]
async fn speculative_then_conflicting() {
    let r = rig(lazy());
    // First write: speculative.
    let rsp = put(&r, rid(1, 1), "x", "1").await;
    assert_eq!(rsp, Response::Update { result: OpResult::Written { version: 1 }, synced: false });
    assert_eq!(r.master.pending_len(), 1);
    assert_eq!(r.backup.next_seq(M), None);
    // Second write, same key: blocking sync, tagged synced.
    let rsp = put(&r, rid(1, 2), "x", "2").await;
    assert_eq!(rsp, Response::Update { result: OpResult::Written { version: 2 }, synced: true });
    assert_eq!(r.master.pending_len(), 0);
    assert_eq!(r.backup.next_seq(M), Some(2));
}

#[tokio::test]
async fn duplicate_answers_from_completion_record() {
    let r = rig(lazy());
    let id = rid(1, 1);
    let first = r.master.handle_update(id, 0, WLV, Op::Incr { key: b("c"), delta: 5 }).await;
    let second = r.master.handle_update(id, 0, WLV, Op::Incr { key: b("c"), delta: 5 }).await;
    match (first, second) {
        (Response::Update { result: a, .. }, Response::Update { result: bb, synced }) => {
            assert_eq!(a, OpResult::Counter(5));
            assert_eq!(bb, OpResult::Counter(5), "duplicate must not re-execute");
            assert!(!synced, "still pending");
        }
        other => panic!("unexpected {other:?}"),
    }
    // Once synced, the duplicate answer reports synced=true.
    assert!(r.master.sync().await);
    let third = r.master.handle_update(id, 0, WLV, Op::Incr { key: b("c"), delta: 5 }).await;
    assert_eq!(third, Response::Update { result: OpResult::Counter(5), synced: true });
}

#[tokio::test]
async fn stale_witness_list_version_is_fenced() {
    let r = rig(lazy());
    let rsp = r
        .master
        .handle_update(rid(1, 1), 0, WitnessListVersion(0), Op::Put { key: b("k"), value: b("v") })
        .await;
    assert_eq!(rsp, Response::StaleWitnessList { current: WLV });
}

#[tokio::test]
async fn not_owner_outside_range() {
    let backup = Arc::new(BackupService::new());
    let witness = Arc::new(WitnessService::new(CacheConfig::default()));
    let master = Master::new(
        MasterSeed {
            id: M,
            epoch: Epoch(1),
            backups: vec![BACKUP],
            witnesses: vec![WITNESS],
            wl_version: WLV,
            // Owns nothing but a sliver.
            range: HashRange { start: 10, end: 11 },
        },
        lazy(),
        Arc::new(Loopback { backup, witness }),
    );
    let rsp = master
        .handle_update(rid(1, 1), 0, WLV, Op::Put { key: b("anything"), value: b("v") })
        .await;
    assert_eq!(rsp, Response::NotOwner);
}

#[tokio::test]
async fn read_only_op_via_update_is_rejected() {
    let r = rig(lazy());
    let rsp = r.master.handle_update(rid(1, 1), 0, WLV, Op::Get { key: b("k") }).await;
    assert!(matches!(rsp, Response::Retry { .. }));
    // And mutations via read are rejected too.
    let rsp = r.master.handle_read(Op::Put { key: b("k"), value: b("v") }).await;
    assert!(matches!(rsp, Response::Retry { .. }));
}

#[tokio::test]
async fn failed_conditional_put_is_durably_recorded() {
    let r = rig(lazy());
    put(&r, rid(1, 1), "k", "v").await;
    let rsp = r
        .master
        .handle_update(
            rid(1, 2),
            0,
            WLV,
            Op::ConditionalPut { key: b("k"), expected_version: 99, value: b("x") },
        )
        .await;
    match rsp {
        Response::Update { result: OpResult::ConditionFailed { actual_version }, synced } => {
            assert_eq!(actual_version, 1);
            assert!(synced, "same key: conflict path");
        }
        other => panic!("unexpected {other:?}"),
    }
    // The failure itself became a durable completion record on the backup.
    assert_eq!(r.backup.next_seq(M), Some(2));
    let dup = r
        .master
        .handle_update(
            rid(1, 2),
            0,
            WLV,
            Op::ConditionalPut { key: b("k"), expected_version: 99, value: b("x") },
        )
        .await;
    match dup {
        Response::Update { result: OpResult::ConditionFailed { actual_version }, .. } => {
            assert_eq!(actual_version, 1, "duplicate returns the original failure");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[tokio::test]
async fn sync_gc_drains_witness() {
    let r = rig(lazy());
    // Simulate the client-side record (the master does not record; clients do).
    let op = Op::Put { key: b("k"), value: b("v") };
    let req = curp_proto::message::RecordedRequest {
        master_id: M,
        rpc_id: rid(1, 1),
        key_hashes: op.key_hashes(),
        op: op.clone(),
    };
    assert!(r.witness.record(req));
    put(&r, rid(1, 1), "k", "v").await;
    assert_eq!(r.witness.occupancy(M), 1);
    assert!(r.master.sync().await);
    assert_eq!(r.witness.occupancy(M), 0, "sync must gc the witness");
}

#[tokio::test]
async fn suspected_garbage_is_retried_and_collected() {
    let r = rig(lazy());
    // A client recorded a request but crashed before reaching the master.
    let op = Op::Put { key: b("orphan"), value: b("v") };
    let req = curp_proto::message::RecordedRequest {
        master_id: M,
        rpc_id: rid(9, 1),
        key_hashes: op.key_hashes(),
        op,
    };
    assert!(r.witness.record(req));
    // Several gc rounds pass (other traffic syncing).
    for i in 0..3 {
        put(&r, rid(1, i + 1), &format!("other{i}"), "v").await;
        assert!(r.master.sync().await);
    }
    // A new client bumps into the orphan: its record RPC is rejected by the
    // witness (same key), which flags the aged occupant as suspected garbage.
    let op2 = Op::Put { key: b("orphan"), value: b("w") };
    let rejected = curp_proto::message::RecordedRequest {
        master_id: M,
        rpc_id: rid(2, 1),
        key_hashes: op2.key_hashes(),
        op: op2,
    };
    assert!(!r.witness.record(rejected), "conflicting record must be rejected");
    let rsp = put(&r, rid(2, 1), "orphan", "w").await;
    // The master executed it (master-side state had no conflict).
    assert!(matches!(rsp, Response::Update { .. }));
    // Next sync's gc response carries the suspect; the master re-executes it
    // (filtered to a fresh execution here since it never ran), syncs it, and
    // re-gc's. After the following sync the witness is clean.
    assert!(r.master.sync().await);
    assert!(r.master.sync().await);
    assert_eq!(r.witness.occupancy(M), 0, "orphan record must eventually be collected");
    // The orphan's operation DID execute exactly once.
    let rsp = r.master.handle_read(Op::Get { key: b("orphan") }).await;
    match rsp {
        Response::Read { result: OpResult::Value(Some(v)) } => {
            // Last writer between the orphan ("v") and client 2 ("w") depends
            // on arrival order; both are valid linearizations. Just assert a
            // value exists.
            assert!(v == b("v") || v == b("w"));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[tokio::test]
async fn client_expiry_syncs_first() {
    let r = rig(lazy());
    put(&r, rid(5, 1), "k", "v").await;
    assert_eq!(r.backup.next_seq(M), None);
    let rsp = r.master.handle_client_expired(ClientId(5)).await;
    assert_eq!(rsp, Response::ClientExpiredAck);
    // §4.8: the data was made durable BEFORE dropping the records.
    assert_eq!(r.backup.next_seq(M), Some(1));
    // The client's rpc is now ignored.
    let rsp = put(&r, rid(5, 1), "k", "v").await;
    assert!(matches!(rsp, Response::Retry { .. }));
}

#[tokio::test]
async fn witness_list_install_requires_newer_version() {
    let r = rig(lazy());
    let rsp = r.master.handle_witness_list(WitnessListVersion(2), vec![WITNESS]).await;
    assert_eq!(rsp, Response::WitnessListInstalled);
    let (v, _) = r.master.witness_list();
    assert_eq!(v, WitnessListVersion(2));
    // An older (replayed) install does not regress the version.
    r.master.handle_witness_list(WitnessListVersion(1), vec![BACKUP]).await;
    let (v, list) = r.master.witness_list();
    assert_eq!(v, WitnessListVersion(2));
    assert_eq!(list, vec![WITNESS]);
}

#[tokio::test]
async fn sealed_master_refuses_everything() {
    let r = rig(lazy());
    r.master.seal();
    assert!(matches!(put(&r, rid(1, 1), "k", "v").await, Response::Retry { .. }));
    assert!(matches!(r.master.handle_read(Op::Get { key: b("k") }).await, Response::Retry { .. }));
    assert!(matches!(r.master.handle_sync(M).await, Response::Retry { .. }));
}

#[tokio::test]
async fn sync_for_a_dead_incarnation_is_refused() {
    let r = rig(lazy());
    put(&r, rid(1, 1), "k", "v").await;
    // A client holding speculative results from a previous master life asks
    // this incarnation to vouch for them. It must refuse: a SyncDone here
    // only proves durability of entries *this* log holds, and answering for
    // a dead incarnation would let the client externalize results that
    // recovery may have discarded (the chaos fleet's zombie-ack scenario).
    let stale = MasterId(M.0 + 1);
    assert!(matches!(r.master.handle_sync(stale).await, Response::Retry { .. }));
    assert_eq!(r.master.pending_len(), 1, "a refused sync must not sync anything");
    // The same request naming the live incarnation succeeds.
    assert_eq!(r.master.handle_sync(M).await, Response::SyncDone);
    assert_eq!(r.master.pending_len(), 0);
}

#[tokio::test]
async fn migrate_out_shrinks_ownership() {
    let r = rig(lazy());
    // Spray keys across the hash space.
    for i in 0..32 {
        put(&r, rid(1, i + 1), &format!("mk{i}"), "v").await;
    }
    let snap = r.master.migrate_out(1 << 63).await.expect("migrate");
    // Everything was synced first.
    assert_eq!(r.master.pending_len(), 0);
    // The snapshot holds the upper half; the master refuses those keys now.
    let migrated = snap.objects.len();
    assert!(migrated > 0, "expected some keys in the upper half");
    let mut refused = 0;
    for i in 0..32 {
        let rsp = put(&r, rid(2, i + 1), &format!("mk{i}"), "w").await;
        if rsp == Response::NotOwner {
            refused += 1;
        }
    }
    assert_eq!(refused, migrated, "refusals must match migrated keys");
}

#[tokio::test]
async fn load_stats_after_a_cut_ignores_departed_hot_keys() {
    let r = rig(lazy());
    for i in 0..32 {
        put(&r, rid(1, i + 1), &format!("mk{i}"), "v").await;
    }
    let snap = r.master.migrate_out(1 << 63).await.expect("migrate");
    let departed = snap.objects.len() as u64;
    assert!(departed > 0, "expected some keys in the upper half");

    // The hot-key memory still remembers the departed half (the window has
    // not rolled over), but the histogram must only count what the shrunk
    // range owns: the edge clamp would otherwise pile the departed mass
    // into the top bucket and drag every later split point to the cut edge.
    let stats = r.master.load_stats();
    assert_eq!(stats.range, HashRange { start: 0, end: 1 << 63 });
    assert_eq!(stats.mass(), 32 - departed, "departed keys leaked into the histogram");
    let split = stats.split_point().expect("owned keys keep the range splittable");
    assert!(
        split < (1 << 62) + (1 << 61),
        "split point {split:#x} dragged toward the cut edge ({:#x})",
        1u64 << 63
    );
}

#[tokio::test]
async fn unreachable_backup_fails_sync_but_keeps_pending() {
    let backup = Arc::new(BackupService::new());
    let witness = Arc::new(WitnessService::new(CacheConfig::default()));
    let master = Master::new(
        MasterSeed {
            id: M,
            epoch: Epoch(1),
            backups: vec![ServerId(99)], // nobody home
            witnesses: vec![],
            wl_version: WLV,
            range: HashRange::FULL,
        },
        MasterConfig {
            sync_retry_limit: 2,
            sync_retry_backoff: Duration::from_millis(1),
            ..lazy()
        },
        Arc::new(Loopback { backup, witness }),
    );
    let rsp = master.handle_update(rid(1, 1), 0, WLV, Op::Put { key: b("k"), value: b("v") }).await;
    // Speculative response still works...
    assert!(matches!(rsp, Response::Update { synced: false, .. }));
    // ...but an explicit sync fails and the entry stays pending for retry.
    assert!(!master.sync().await);
    assert_eq!(master.pending_len(), 1);
}

#[tokio::test]
async fn dishonest_footprint_is_dropped_on_replay() {
    let r = rig(lazy());
    // A buggy client cached a footprint that does not match its op: the
    // witness files it under "fake" while the op would write "real".
    let lying = curp_proto::message::RecordedRequest {
        master_id: M,
        rpc_id: rid(9, 1),
        key_hashes: Op::Put { key: b("fake"), value: b("v") }.key_hashes(),
        op: Op::Put { key: b("real"), value: b("v") },
    };
    assert!(r.witness.record(lying));
    // Several gc rounds age the record into suspicion territory.
    for i in 0..3 {
        put(&r, rid(1, i + 1), &format!("other{i}"), "v").await;
        assert!(r.master.sync().await);
    }
    // An honest record on "fake" collides with the lying one, flagging it as
    // suspected garbage for the next gc response.
    let honest = Op::Put { key: b("fake"), value: b("w") };
    let rejected = curp_proto::message::RecordedRequest {
        master_id: M,
        rpc_id: rid(2, 1),
        key_hashes: honest.key_hashes(),
        op: honest,
    };
    assert!(!r.witness.record(rejected), "conflicting record must be rejected");
    put(&r, rid(2, 1), "fake", "w").await;
    // The gc response delivers the lying request to the master, which must
    // drop it (DESIGN.md invariant 1) rather than execute it.
    assert!(r.master.sync().await);
    assert!(r.master.sync().await);
    let got = r.master.handle_read(Op::Get { key: b("real") }).await;
    assert!(
        matches!(got, Response::Read { result: OpResult::Value(None) }),
        "a request with a mismatching cached footprint must never execute"
    );
}

#[tokio::test]
async fn sync_merges_per_shard_tails_into_contiguous_log() {
    // Many keys spread across every shard of the execution engine, then one
    // sync round: the backup applies entries strictly in seq order, so its
    // next_seq only reaches the full count if the merged per-shard pending
    // tails form a contiguous prefix of the global log. A merge bug would
    // strand entries in the backup's reorder buffer.
    let r = rig(lazy());
    for i in 0..40u64 {
        let rsp = put(&r, rid(1, i + 1), &format!("key-{i}"), "v").await;
        assert!(matches!(rsp, Response::Update { synced: false, .. }), "commuting write {i}");
    }
    assert_eq!(r.master.pending_len(), 40);
    assert!(r.master.sync().await);
    assert_eq!(r.master.pending_len(), 0);
    assert_eq!(r.backup.next_seq(M), Some(40), "backup must have applied every entry in order");
}

#[tokio::test]
async fn load_stats_snapshot_is_allocation_bounded() {
    use curp_proto::cluster::LOAD_HISTOGRAM_BUCKETS;

    // One shard with a tiny hot-key window makes the retain bound
    // (8 * hotkey_window + 64 entries per shard) small enough to exercise.
    let hotkey_window = 4u64;
    let r =
        rig(MasterConfig { store: curp_storage::StoreConfig::memory(1), hotkey_window, ..lazy() });
    // An empty master still answers with the full (all-zero) histogram.
    let empty = r.master.load_stats();
    assert_eq!(empty.hot_hash_histogram.len(), LOAD_HISTOGRAM_BUCKETS);
    assert_eq!(empty.mass(), 0);
    assert_eq!(empty.split_point(), None);

    // Far more distinct keys than the hot-key window holds: the snapshot's
    // histogram must stay at its fixed bucket count and its mass must stay
    // within the retain bound — no allocation proportional to the keyspace.
    let keys = 2_000u64;
    for i in 0..keys {
        put(&r, rid(1, i + 1), &format!("load-{i}"), "v").await;
    }
    let stats = r.master.load_stats();
    assert_eq!(stats.hot_hash_histogram.len(), LOAD_HISTOGRAM_BUCKETS);
    assert!(stats.mass() > 0, "recent updates must register in the histogram");
    assert!(
        stats.mass() <= 8 * hotkey_window + 64 + 1,
        "histogram mass {} exceeds the recent-updates retain bound",
        stats.mass()
    );
    assert_eq!(stats.updates, keys);
    assert_eq!(stats.pending, r.master.pending_len() as u64);
    assert_eq!(stats.range, HashRange::FULL);
    // Uniform keys: the load-weighted split point is a legal split_at input.
    let mid = stats.split_point().expect("mass > 0 over a splittable range");
    assert!(mid > 0 && mid < u64::MAX);

    // The RPC surface agrees with the direct call, and a stale incarnation
    // id is refused (the autoscaler may race a recovery).
    let rsp = r.master.handle_request(Request::MasterLoadStats { master_id: M }).await;
    match rsp {
        Response::LoadStats { stats: s } => {
            assert_eq!(s.hot_hash_histogram.len(), LOAD_HISTOGRAM_BUCKETS)
        }
        other => panic!("unexpected {other:?}"),
    }
    let rsp =
        r.master.handle_request(Request::MasterLoadStats { master_id: MasterId(M.0 + 1) }).await;
    assert!(matches!(rsp, Response::Retry { .. }));
}

#[tokio::test]
async fn multikey_update_spans_shards_atomically() {
    // A MultiPut whose keys land on different shards: executes atomically,
    // conflicts with later single-key writes on any of its keys, and syncs
    // as one log entry.
    let r = rig(lazy());
    let kvs: Vec<(Bytes, Bytes)> = (0..6).map(|i| (b(&format!("mk{i}")), b("v"))).collect();
    let rsp = r.master.handle_update(rid(1, 1), 0, WLV, Op::MultiPut { kvs }).await;
    assert!(matches!(rsp, Response::Update { result: OpResult::Written { .. }, synced: false }));
    assert_eq!(r.master.pending_len(), 1);
    // Touching any of its keys is a conflict: the response comes back synced.
    let rsp = put(&r, rid(1, 2), "mk3", "w").await;
    assert!(matches!(rsp, Response::Update { synced: true, .. }));
    assert_eq!(r.backup.next_seq(M), Some(2));
    // Both survive on the backup replica.
    let got = r.backup.read(M, &Op::Get { key: b("mk0") });
    assert_eq!(got, Some(OpResult::Value(Some(b("v")))));
    let got = r.backup.read(M, &Op::Get { key: b("mk3") });
    assert_eq!(got, Some(OpResult::Value(Some(b("w")))));
}
