//! Property tests for the witness invariant at the heart of CURP's safety
//! argument (§3.4): *everything a witness stores is pairwise commutative*,
//! under arbitrary interleavings of record and gc operations.

use bytes::Bytes;
use curp_proto::message::RecordedRequest;
use curp_proto::op::Op;
use curp_proto::types::{ClientId, MasterId, RpcId};
use curp_witness::{CacheConfig, RecordOutcome, WitnessCache};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    /// Record a single-key put on key index `k`.
    Record { k: u8, client: u64 },
    /// Record a multi-key put on key indices `ks`.
    RecordMulti { ks: Vec<u8>, client: u64 },
    /// Gc the `i`-th accepted-and-not-yet-collected request.
    Gc { i: usize },
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<u8>(), 1..20u64).prop_map(|(k, client)| Action::Record { k, client }),
        (prop::collection::vec(any::<u8>(), 1..4), 1..20u64)
            .prop_map(|(ks, client)| Action::RecordMulti { ks, client }),
        (0..16usize).prop_map(|i| Action::Gc { i }),
    ]
}

fn make_request(keys: &[u8], client: u64, seq: u64) -> RecordedRequest {
    let op = if keys.len() == 1 {
        Op::Put { key: Bytes::from(format!("key-{}", keys[0])), value: Bytes::from_static(b"v") }
    } else {
        Op::MultiPut {
            kvs: keys
                .iter()
                .map(|k| (Bytes::from(format!("key-{k}")), Bytes::from_static(b"v")))
                .collect(),
        }
    };
    RecordedRequest {
        master_id: MasterId(1),
        rpc_id: RpcId::new(ClientId(client), seq),
        key_hashes: op.key_hashes(),
        op,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn stored_requests_are_always_pairwise_commutative(
        actions in prop::collection::vec(arb_action(), 1..80),
        slots in prop_oneof![Just(64usize), Just(256), Just(4096)],
        assoc in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let mut cache = WitnessCache::new(CacheConfig {
            total_slots: slots,
            associativity: assoc,
            gc_suspicion_rounds: 3,
        });
        let mut live: Vec<RecordedRequest> = Vec::new();
        let mut seq = 0u64;

        for action in actions {
            match action {
                Action::Record { k, client } => {
                    seq += 1;
                    let r = make_request(&[k], client, seq);
                    if cache.record(r.clone()) == RecordOutcome::Accepted {
                        live.push(r);
                    }
                }
                Action::RecordMulti { ks, client } => {
                    seq += 1;
                    let r = make_request(&ks, client, seq);
                    if cache.record(r.clone()) == RecordOutcome::Accepted {
                        live.push(r);
                    }
                }
                Action::Gc { i } => {
                    if !live.is_empty() {
                        let r = live.remove(i % live.len());
                        let pairs: Vec<_> =
                            r.key_hashes.iter().map(|&kh| (kh, r.rpc_id)).collect();
                        cache.gc(&pairs);
                    }
                }
            }

            // Invariant 1: stored set == our model of accepted-minus-gc'd.
            let mut stored = cache.all_requests();
            stored.sort_by_key(|r| r.rpc_id);
            let mut expect = live.clone();
            expect.sort_by_key(|r| r.rpc_id);
            prop_assert_eq!(&stored, &expect);

            // Invariant 2: pairwise commutativity of everything stored.
            for (i, a) in stored.iter().enumerate() {
                for b in &stored[i + 1..] {
                    prop_assert!(
                        a.op.commutes_with(&b.op),
                        "witness stored non-commutative requests {:?} and {:?}",
                        a.rpc_id,
                        b.rpc_id
                    );
                }
            }
        }
    }

    #[test]
    fn occupancy_never_exceeds_capacity(
        keys in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        let mut cache = WitnessCache::new(CacheConfig {
            total_slots: 32,
            associativity: 4,
            gc_suspicion_rounds: 3,
        });
        for (i, k) in keys.iter().enumerate() {
            let _ = cache.record(make_request(&[*k], 1, i as u64 + 1));
            prop_assert!(cache.occupied_slots() <= 32);
        }
    }
}

proptest! {
    /// The §A.1 read probe is exact: a probe on key hashes H reports
    /// commutative iff no stored request touches any hash in H.
    #[test]
    fn commute_probe_is_exact(
        stored_keys in prop::collection::vec(any::<u8>(), 0..30),
        probe_keys in prop::collection::vec(any::<u8>(), 1..6),
    ) {
        let mut cache = WitnessCache::new(CacheConfig {
            total_slots: 4096,
            associativity: 4,
            gc_suspicion_rounds: 3,
        });
        let mut accepted_hashes = std::collections::HashSet::new();
        for (i, k) in stored_keys.iter().enumerate() {
            let req = make_request(&[*k], 1, i as u64 + 1);
            let hashes = req.key_hashes.clone();
            if cache.record(req) == RecordOutcome::Accepted {
                accepted_hashes.extend(hashes);
            }
        }
        let probe: Vec<curp_proto::types::KeyHash> = probe_keys
            .iter()
            .flat_map(|k| make_request(&[*k], 9, 1).key_hashes)
            .collect();
        let expect = probe.iter().all(|h| !accepted_hashes.contains(h));
        prop_assert_eq!(cache.commutes_with_read(&probe), expect);
    }
}
