//! Crash-mid-append properties for the witness journal.
//!
//! 1. Truncating a journal at **every** byte offset replays a clean prefix:
//!    `JournaledWitness::open` never panics or errors (a tear is not
//!    corruption), and the restored instance holds exactly the records
//!    whose journal frames survived complete — no phantom record ever
//!    appears from a half-written frame.
//! 2. Freezing is irreversible across *two* restarts: an instance that
//!    entered recovery mode before a power loss must come back frozen, stay
//!    frozen through another loss, and still serve its recovery data —
//!    otherwise a thawed witness could accept records that recovery will
//!    never replay (§4.6).

use bytes::Bytes;
use curp_proto::frame::FrameDecoder;
use curp_proto::message::{RecordedRequest, Request, Response};
use curp_proto::op::Op;
use curp_proto::types::{ClientId, MasterId, RpcId};
use curp_witness::cache::CacheConfig;
use curp_witness::JournaledWitness;
use proptest::prelude::*;

const M: MasterId = MasterId(1);

fn req(key: Vec<u8>, seq: u64) -> RecordedRequest {
    let op = Op::Put { key: Bytes::from(key), value: Bytes::from_static(b"v") };
    RecordedRequest {
        master_id: M,
        rpc_id: RpcId::new(ClientId(1), seq),
        key_hashes: op.key_hashes(),
        op,
    }
}

fn tmpfile(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("curp-proptest-journal-{}-{tag}", std::process::id()))
}

/// Number of complete frames within the first `cut` bytes of `raw`.
fn complete_frames(raw: &[u8], cut: usize) -> usize {
    let mut decoder = FrameDecoder::new();
    decoder.push(&raw[..cut]);
    let mut frames = 0;
    while let Ok(Some(_)) = decoder.next_frame() {
        frames += 1;
    }
    frames
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every byte-offset truncation replays cleanly: the surviving record
    /// count equals the number of complete record frames (frame 0 is the
    /// `start` mutation), and a record that conflicts with a survivor is
    /// still rejected — the commutativity state really was rebuilt.
    #[test]
    fn every_truncation_offset_replays_a_clean_prefix(
        keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..24), 1..5)
    ) {
        let path = tmpfile("truncate");
        let _ = std::fs::remove_file(&path);
        // Distinct keys so records commute and every one is accepted.
        let mut distinct = keys;
        for (i, k) in distinct.iter_mut().enumerate() {
            k.push(i as u8);
        }
        {
            let w = JournaledWitness::open(CacheConfig::default(), &path).unwrap();
            w.handle_request(&Request::WitnessStart { master_id: M });
            for (i, k) in distinct.iter().enumerate() {
                let rsp = w.handle_request(&Request::WitnessRecord {
                    request: req(k.clone(), i as u64 + 1),
                });
                prop_assert_eq!(rsp, Response::RecordAccepted);
            }
        }
        let raw = std::fs::read(&path).unwrap();
        for cut in 0..=raw.len() {
            std::fs::write(&path, &raw[..cut]).unwrap();
            let w = JournaledWitness::open(CacheConfig::default(), &path)
                .unwrap_or_else(|e| panic!("cut at {cut}/{} must replay: {e}", raw.len()));
            let frames = complete_frames(&raw, cut);
            let expect_records = frames.saturating_sub(1); // minus the start frame
            prop_assert_eq!(
                w.service().occupancy(M), expect_records,
                "cut {} of {}", cut, raw.len()
            );
            if expect_records >= 1 {
                // Same key, different rpc: must conflict with the survivor.
                let rsp = w.handle_request(&Request::WitnessRecord {
                    request: req(distinct[0].clone(), 999),
                });
                prop_assert_eq!(rsp, Response::RecordRejected);
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn frozen_instance_stays_frozen_across_two_restarts() {
    let path = tmpfile("twice-frozen");
    let _ = std::fs::remove_file(&path);
    {
        let w = JournaledWitness::open(CacheConfig::default(), &path).unwrap();
        w.handle_request(&Request::WitnessStart { master_id: M });
        w.handle_request(&Request::WitnessRecord { request: req(b"k".to_vec(), 1) });
        // Recovery begins: the instance freezes, and the freeze is journaled.
        match w.handle_request(&Request::WitnessGetRecoveryData { master_id: M }) {
            Response::RecoveryData { requests } => assert_eq!(requests.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }
    for restart in 1..=2 {
        let w = JournaledWitness::open(CacheConfig::default(), &path).unwrap();
        assert!(w.service().is_recovering(M), "thawed after restart {restart}");
        assert_eq!(
            w.handle_request(&Request::WitnessRecord { request: req(b"other".to_vec(), 9) }),
            Response::RecordRejected,
            "frozen instance accepted a record after restart {restart}"
        );
        // The recovery data survives both restarts intact.
        match w.handle_request(&Request::WitnessGetRecoveryData { master_id: M }) {
            Response::RecoveryData { requests } => assert_eq!(requests.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn records_journaled_after_a_torn_restart_survive_the_next_restart() {
    let path = tmpfile("torn-then-append");
    let _ = std::fs::remove_file(&path);
    {
        let w = JournaledWitness::open(CacheConfig::default(), &path).unwrap();
        w.handle_request(&Request::WitnessStart { master_id: M });
        w.handle_request(&Request::WitnessRecord { request: req(b"a".to_vec(), 1) });
        w.handle_request(&Request::WitnessRecord { request: req(b"b".to_vec(), 2) });
    }
    // Power loss mid-append of a third record: tear the final frame.
    let len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len - 5).unwrap();
    drop(f);
    {
        // The reopen must CUT the torn bytes, not merely skip them — new
        // records are appended behind them otherwise, hidden by the tear's
        // stale length prefix.
        let w = JournaledWitness::open(CacheConfig::default(), &path).unwrap();
        assert_eq!(w.service().occupancy(M), 1, "torn second record dropped");
        assert_eq!(
            w.handle_request(&Request::WitnessRecord { request: req(b"c".to_vec(), 3) }),
            Response::RecordAccepted
        );
    }
    let w = JournaledWitness::open(CacheConfig::default(), &path).unwrap();
    assert_eq!(w.service().occupancy(M), 2, "record journaled after the tear was lost");
    // Both survivors still enforce commutativity.
    for key in [b"a".to_vec(), b"c".to_vec()] {
        assert_eq!(
            w.handle_request(&Request::WitnessRecord { request: req(key, 9) }),
            Response::RecordRejected
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn mid_journal_corruption_fails_the_open() {
    let path = tmpfile("midlog");
    let _ = std::fs::remove_file(&path);
    {
        let w = JournaledWitness::open(CacheConfig::default(), &path).unwrap();
        w.handle_request(&Request::WitnessStart { master_id: M });
        for i in 1..=3u64 {
            w.handle_request(&Request::WitnessRecord {
                request: req(format!("k{i}").into_bytes(), i),
            });
        }
    }
    // Corrupt the first record frame's JournalOp tag (right after the start
    // frame): complete frames follow, so this is not a torn tail.
    let raw = std::fs::read(&path).unwrap();
    let mut decoder = FrameDecoder::new();
    decoder.push(&raw);
    let start_frame = decoder.next_frame().unwrap().unwrap();
    let tag_offset = 4 + start_frame.len() + 4; // start frame + next length prefix
    let mut bad = raw.clone();
    bad[tag_offset] = 0xEE; // invalid JournalOp tag
    std::fs::write(&path, &bad).unwrap();
    let err = match JournaledWitness::open(CacheConfig::default(), &path) {
        Err(e) => e,
        Ok(_) => panic!("mid-journal corruption must fail the open"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
    std::fs::remove_file(&path).unwrap();
}
