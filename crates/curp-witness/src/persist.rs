//! Durable witness state (§3.2.2): *"To be safe from power failures,
//! witnesses store their data in non-volatile memory (such as flash-backed
//! DRAM)."*
//!
//! Commodity hardware substitution: a write-ahead journal of witness
//! mutations (start / record / gc / freeze / end), length-prefix framed with
//! the shared codec. A restarted witness server replays the journal to
//! recover exactly the instances and records it held — including frozen
//! (recovery-mode) instances, whose immutability must survive the restart.
//! A torn tail (power loss mid-append) is discarded, like the AOF loader.
//!
//! The journal is an *optional* layer: the in-memory
//! [`WitnessService`] stays pure, and
//! [`JournaledWitness`] wraps it, persisting every accepted mutation before
//! acknowledging — the write-ahead discipline that makes the paper's
//! durability claim honest on disk-backed hardware.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};
use curp_proto::frame::write_frame;
use curp_proto::lockrank;
use curp_proto::message::{RecordedRequest, Request, Response};
use curp_proto::types::{KeyHash, MasterId, RpcId};
use curp_proto::wire::{
    decode_seq, encode_seq, need, seq_encoded_len, Decode, DecodeError, Encode,
};
use parking_lot::Mutex;

use crate::cache::CacheConfig;
use crate::service::WitnessService;

/// One journaled mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JournalOp {
    Start(MasterId),
    Record(RecordedRequest),
    Gc { master: MasterId, pairs: Vec<(KeyHash, RpcId)> },
    Freeze(MasterId),
    End(MasterId),
}

const J_START: u8 = 0;
const J_RECORD: u8 = 1;
const J_GC: u8 = 2;
const J_FREEZE: u8 = 3;
const J_END: u8 = 4;

impl Encode for JournalOp {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            JournalOp::Start(m) => {
                buf.put_u8(J_START);
                m.encode(buf);
            }
            JournalOp::Record(r) => {
                buf.put_u8(J_RECORD);
                r.encode(buf);
            }
            JournalOp::Gc { master, pairs } => {
                buf.put_u8(J_GC);
                master.encode(buf);
                encode_seq(pairs, buf);
            }
            JournalOp::Freeze(m) => {
                buf.put_u8(J_FREEZE);
                m.encode(buf);
            }
            JournalOp::End(m) => {
                buf.put_u8(J_END);
                m.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            JournalOp::Start(m) | JournalOp::Freeze(m) | JournalOp::End(m) => m.encoded_len(),
            JournalOp::Record(r) => r.encoded_len(),
            JournalOp::Gc { master, pairs } => master.encoded_len() + seq_encoded_len(pairs),
        }
    }
}

impl Decode for JournalOp {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        need(buf, 1)?;
        Ok(match buf.get_u8() {
            J_START => JournalOp::Start(MasterId::decode(buf)?),
            J_RECORD => JournalOp::Record(RecordedRequest::decode(buf)?),
            J_GC => JournalOp::Gc { master: MasterId::decode(buf)?, pairs: decode_seq(buf)? },
            J_FREEZE => JournalOp::Freeze(MasterId::decode(buf)?),
            J_END => JournalOp::End(MasterId::decode(buf)?),
            tag => return Err(DecodeError::InvalidTag { ty: "JournalOp", tag }),
        })
    }
}

/// A [`WitnessService`] with a write-ahead journal.
pub struct JournaledWitness {
    inner: WitnessService,
    journal: Mutex<File>,
}

impl JournaledWitness {
    /// Opens (or creates) a journaled witness at `path`, replaying any
    /// existing journal to restore prior state.
    ///
    /// Replay follows the AOF's torn-tail discipline: a crash mid-append
    /// leaves an incomplete (or undecodable) *final* record, which is
    /// discarded — the mutation it described was never acknowledged, because
    /// the journal fsync precedes every ack. A corrupt record with complete
    /// frames *after* it cannot be a tear and fails the open with
    /// `InvalidData`: silently skipping it would thaw acknowledged state.
    pub fn open(config: CacheConfig, path: &Path) -> std::io::Result<JournaledWitness> {
        let inner = WitnessService::new(config);
        // Replay through the shared framed-log reader (a missing journal is
        // a fresh witness; any *other* open failure — permissions, I/O —
        // fails loudly: skipping replay on a transient error would boot an
        // empty-but-acking witness and thaw frozen instances).
        let out = curp_storage::load_framed(path, "journal", |frame| {
            JournalOp::from_bytes_shared(frame).map_err(|e| e.to_string())
        })?;
        for op in out.records {
            match op {
                JournalOp::Start(m) => {
                    inner.start(m);
                }
                JournalOp::Record(r) => {
                    inner.record(r);
                }
                JournalOp::Gc { master, pairs } => {
                    inner.gc(master, &pairs);
                }
                // Freezing is irreversible and must survive restarts: a
                // thawed witness could accept records that recovery will
                // never replay (§4.6).
                JournalOp::Freeze(m) => {
                    inner.get_recovery_data(m);
                }
                JournalOp::End(m) => inner.end(m),
            }
        }
        // Cut any torn tail before reopening for append: a new record
        // journaled after the leftover bytes would hide behind the tear's
        // stale length prefix and poison the next replay.
        if out.truncated {
            let t = OpenOptions::new().write(true).open(path)?;
            t.set_len(out.clean_len)?;
            t.sync_data()?;
        }
        let created = !path.exists();
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        if created {
            // Make the directory entry durable too: a journal whose file
            // can vanish with an unflushed directory in a power loss is not
            // write-ahead storage (same rule as `curp_storage::fsync_dir`).
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                File::open(dir)?.sync_all()?;
            }
        }
        Ok(JournaledWitness {
            inner,
            journal: Mutex::ranked(lockrank::WITNESS_JOURNAL, "witness.journal.file", file),
        })
    }

    fn append(&self, op: &JournalOp) -> std::io::Result<()> {
        let mut buf = BytesMut::with_capacity(op.encoded_len() + 4);
        write_frame(&op.to_bytes(), &mut buf);
        let mut journal = self.journal.lock();
        journal.write_all(&buf)?;
        // Write-ahead: the mutation must be stable before we acknowledge.
        journal.sync_data()
    }

    /// The wrapped in-memory service (read-only access for diagnostics).
    pub fn service(&self) -> &WitnessService {
        &self.inner
    }

    /// Handles a witness RPC with write-ahead journaling. Journal failures
    /// surface as rejections — a witness that cannot persist must not
    /// promise durability.
    pub fn handle_request(&self, req: &Request) -> Response {
        let journal_op = match req {
            Request::WitnessStart { master_id } => Some(JournalOp::Start(*master_id)),
            Request::WitnessRecord { request } => Some(JournalOp::Record(request.clone())),
            Request::WitnessGc { master_id, entries } => {
                Some(JournalOp::Gc { master: *master_id, pairs: entries.clone() })
            }
            Request::WitnessGetRecoveryData { master_id } => Some(JournalOp::Freeze(*master_id)),
            Request::WitnessEnd { master_id } => Some(JournalOp::End(*master_id)),
            _ => None,
        };
        if let Some(op) = journal_op {
            if self.append(&op).is_err() {
                return match req {
                    Request::WitnessRecord { .. } => Response::RecordRejected,
                    _ => Response::Retry { reason: "witness journal write failed".into() },
                };
            }
        }
        self.inner.handle_request(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use curp_proto::op::Op;
    use curp_proto::types::ClientId;

    const M: MasterId = MasterId(1);

    fn req(key: &str, seq: u64) -> RecordedRequest {
        let op = Op::Put {
            key: Bytes::copy_from_slice(key.as_bytes()),
            value: Bytes::from_static(b"v"),
        };
        RecordedRequest {
            master_id: M,
            rpc_id: RpcId::new(ClientId(1), seq),
            key_hashes: op.key_hashes(),
            op,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("curp-witness-journal-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn records_survive_restart() {
        let path = tmp("restart");
        {
            let w = JournaledWitness::open(CacheConfig::default(), &path).unwrap();
            w.handle_request(&Request::WitnessStart { master_id: M });
            for i in 1..=5 {
                let rsp =
                    w.handle_request(&Request::WitnessRecord { request: req(&format!("k{i}"), i) });
                assert_eq!(rsp, Response::RecordAccepted);
            }
        }
        let w = JournaledWitness::open(CacheConfig::default(), &path).unwrap();
        assert_eq!(w.service().occupancy(M), 5, "records lost across restart");
        // Commutativity state survives too: a conflicting record is rejected.
        let rsp = w.handle_request(&Request::WitnessRecord { request: req("k3", 9) });
        assert_eq!(rsp, Response::RecordRejected);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn gc_survives_restart() {
        let path = tmp("gc");
        {
            let w = JournaledWitness::open(CacheConfig::default(), &path).unwrap();
            w.handle_request(&Request::WitnessStart { master_id: M });
            let r = req("k", 1);
            let pair = (r.key_hashes[0], r.rpc_id);
            w.handle_request(&Request::WitnessRecord { request: r });
            w.handle_request(&Request::WitnessGc { master_id: M, entries: vec![pair] });
        }
        let w = JournaledWitness::open(CacheConfig::default(), &path).unwrap();
        assert_eq!(w.service().occupancy(M), 0, "gc'd record resurrected");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn freeze_is_irreversible_across_restart() {
        let path = tmp("freeze");
        {
            let w = JournaledWitness::open(CacheConfig::default(), &path).unwrap();
            w.handle_request(&Request::WitnessStart { master_id: M });
            w.handle_request(&Request::WitnessRecord { request: req("k", 1) });
            w.handle_request(&Request::WitnessGetRecoveryData { master_id: M });
        }
        let w = JournaledWitness::open(CacheConfig::default(), &path).unwrap();
        assert!(w.service().is_recovering(M), "recovery mode must survive restart");
        let rsp = w.handle_request(&Request::WitnessRecord { request: req("other", 2) });
        assert_eq!(rsp, Response::RecordRejected, "frozen witness must stay frozen");
        // The recovery data is still intact.
        match w.handle_request(&Request::WitnessGetRecoveryData { master_id: M }) {
            Response::RecoveryData { requests } => assert_eq!(requests.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded() {
        let path = tmp("torn");
        {
            let w = JournaledWitness::open(CacheConfig::default(), &path).unwrap();
            w.handle_request(&Request::WitnessStart { master_id: M });
            for i in 1..=3 {
                w.handle_request(&Request::WitnessRecord { request: req(&format!("k{i}"), i) });
            }
        }
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);
        let w = JournaledWitness::open(CacheConfig::default(), &path).unwrap();
        assert_eq!(w.service().occupancy(M), 2, "torn third record must be dropped");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn end_survives_restart() {
        let path = tmp("end");
        {
            let w = JournaledWitness::open(CacheConfig::default(), &path).unwrap();
            w.handle_request(&Request::WitnessStart { master_id: M });
            w.handle_request(&Request::WitnessRecord { request: req("k", 1) });
            w.handle_request(&Request::WitnessEnd { master_id: M });
        }
        let w = JournaledWitness::open(CacheConfig::default(), &path).unwrap();
        assert_eq!(w.service().occupancy(M), 0);
        // A fresh life can begin.
        assert_eq!(
            w.handle_request(&Request::WitnessStart { master_id: M }),
            Response::WitnessStarted { ok: true }
        );
        std::fs::remove_file(&path).unwrap();
    }
}
