//! A key-hash-sharded, thread-safe witness cache.
//!
//! The sequential [`WitnessCache`] is the §4.2 set-associative cache behind
//! a single owner. [`ShardedWitnessCache`] splits the same slot array into
//! `S` shards by the *high* bits of the key hash (the inner caches pick
//! their set from the low bits, so the two choices stay independent) and
//! puts each shard behind its own lock: records for commuting requests —
//! different keys, the only records a witness accepts anyway — land on
//! different shards and proceed without contending.
//!
//! The locking discipline mirrors the sharded store: a multi-key record
//! acquires its shard set in ascending index order (deadlock-free), probes
//! every key first, and commits all-or-nothing — the same admission
//! semantics as [`WitnessCache::record`], just split across shards. Each
//! shard keeps its own gc round counter and suspect list; a service-level
//! gc visits every shard (so suspicion rounds keep counting on all of
//! them) and merges the reports, deduplicating multi-key requests that two
//! shards suspected independently.

use std::collections::HashSet;
use std::sync::Arc;

use curp_proto::footprint::InlineVec;
use curp_proto::message::RecordedRequest;
use curp_proto::types::{KeyHash, RpcId};
use parking_lot::Mutex;

use crate::cache::{CacheConfig, RecordOutcome, WitnessCache};

/// Default shard count for a witness cache; must divide the slot count per
/// set (`total_slots / associativity`). The paper's 4096×4-way geometry
/// splits into 8 shards of 128 sets each.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// A sharded [`WitnessCache`]: same admission semantics, per-shard locking.
pub struct ShardedWitnessCache {
    shards: Vec<Mutex<WitnessCache>>,
    config: CacheConfig,
}

impl ShardedWitnessCache {
    /// Creates an empty cache with `config`'s *total* geometry split across
    /// `num_shards` shards.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero, or if the geometry does not divide
    /// evenly (`total_slots` must be a multiple of
    /// `associativity * num_shards`).
    pub fn new(config: CacheConfig, num_shards: usize) -> Self {
        assert!(num_shards > 0, "num_shards must be positive");
        assert!(
            num_shards <= curp_proto::lockrank::MAX_SHARDS,
            "num_shards exceeds the lock-rank shard band"
        );
        assert_eq!(
            config.total_slots % (config.associativity * num_shards),
            0,
            "total_slots must split evenly across shards and sets"
        );
        let inner = CacheConfig { total_slots: config.total_slots / num_shards, ..config };
        ShardedWitnessCache {
            shards: (0..num_shards)
                .map(|i| {
                    Mutex::ranked(
                        curp_proto::lockrank::WITNESS_SHARD + i as u32,
                        "witness.cache.shard",
                        WitnessCache::new(inner),
                    )
                })
                .collect(),
            config,
        }
    }

    /// Picks the largest shard count `<=` [`DEFAULT_CACHE_SHARDS`] that
    /// divides `config`'s geometry evenly (always at least 1).
    pub fn shards_for(config: &CacheConfig) -> usize {
        (1..=DEFAULT_CACHE_SHARDS)
            .rev()
            .find(|s| config.total_slots.is_multiple_of(config.associativity * s))
            .unwrap_or(1)
    }

    /// The overall sizing this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, kh: KeyHash) -> usize {
        kh.shard(self.shards.len())
    }

    /// Number of occupied slots across all shards.
    pub fn occupied_slots(&self) -> usize {
        self.shards.iter().map(|s| s.lock().occupied_slots()).sum()
    }

    /// Approximate memory footprint (see [`WitnessCache::memory_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().memory_bytes()).sum()
    }

    /// Attempts to record `request` — all-or-nothing across every touched
    /// key, like [`WitnessCache::record`].
    ///
    /// Single-shard requests (all single-key requests, and multi-key
    /// requests whose keys happen to co-shard) delegate to the inner cache
    /// under one lock; only cross-shard `MultiPut`s take the multi-lock
    /// path.
    pub fn record(&self, request: RecordedRequest) -> RecordOutcome {
        let first_shard = match request.key_hashes.as_slice() {
            [] => return RecordOutcome::Accepted, // nothing to store
            [kh, ..] => self.shard_of(*kh),
        };
        if request.key_hashes.iter().all(|&kh| self.shard_of(kh) == first_shard) {
            return self.shards[first_shard].lock().record(request);
        }

        // Cross-shard multi-key record: lock the shard set in ascending
        // order, probe every key (tracking claimed slots per shard so two
        // keys sharing a set each get their own slot), then commit.
        let shard_set = request.key_hashes.shard_set(self.shards.len());
        let mut guards: Vec<(usize, parking_lot::MutexGuard<'_, WitnessCache>)> =
            shard_set.iter().map(|&s| (s, self.shards[s].lock())).collect();
        let mut taken: Vec<(usize, InlineVec<usize, 4>)> =
            shard_set.iter().map(|&s| (s, InlineVec::new())).collect();
        let mut chosen: InlineVec<(usize, usize), 4> = InlineVec::new();
        for &kh in &request.key_hashes {
            let shard = self.shard_of(kh);
            let guard =
                &mut guards.iter_mut().find(|(s, _)| *s == shard).expect("shard set covers key").1;
            let claimed = &mut taken.iter_mut().find(|(s, _)| *s == shard).expect("same set").1;
            match guard.find_free_slot(kh, claimed) {
                Ok(idx) => {
                    claimed.push(idx);
                    chosen.push((shard, idx));
                }
                Err(outcome) => return outcome,
            }
        }
        let request = Arc::new(request);
        for (&kh, &(shard, idx)) in request.key_hashes.iter().zip(chosen.iter()) {
            guards
                .iter_mut()
                .find(|(s, _)| *s == shard)
                .expect("still held")
                .1
                .commit_slot(idx, kh, &request);
        }
        RecordOutcome::Accepted
    }

    /// Returns `true` if a read of `key_hashes` commutes with every stored
    /// request (§A.1 probe). Each key checks only its own shard.
    pub fn commutes_with_read(&self, key_hashes: &[KeyHash]) -> bool {
        key_hashes.iter().all(|&kh| {
            self.shards[self.shard_of(kh)].lock().commutes_with_read(std::slice::from_ref(&kh))
        })
    }

    /// Frees the slots named by `(key_hash, rpc_id)` pairs and returns
    /// suspected uncollected garbage (§4.5).
    ///
    /// Every shard participates — each counts one gc round regardless of
    /// whether any of `entries` landed on it, so the suspicion clock ticks
    /// uniformly. Reports are merged and deduplicated by rpc id (a
    /// cross-shard multi-key request may be suspected by several shards).
    pub fn gc(&self, entries: &[(KeyHash, RpcId)]) -> Vec<RecordedRequest> {
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<(KeyHash, RpcId)>> = vec![Vec::new(); n];
        for &(kh, rid) in entries {
            per_shard[self.shard_of(kh)].push((kh, rid));
        }
        let mut out: Vec<RecordedRequest> = Vec::new();
        let mut seen: HashSet<RpcId> = HashSet::new();
        for (shard, subset) in self.shards.iter().zip(per_shard) {
            for stale in shard.lock().gc(&subset) {
                if seen.insert(stale.rpc_id) {
                    out.push(stale);
                }
            }
        }
        out
    }

    /// All distinct requests currently stored (recovery data, §4.6),
    /// deduplicated by rpc id across shards.
    pub fn all_requests(&self) -> Vec<RecordedRequest> {
        let mut seen: HashSet<RpcId> = HashSet::new();
        let mut out = Vec::new();
        for shard in &self.shards {
            for req in shard.lock().all_requests() {
                if seen.insert(req.rpc_id) {
                    out.push(req);
                }
            }
        }
        out
    }

    /// Clears every shard (§3.6 witness reset).
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.lock().reset();
        }
    }
}

impl std::fmt::Debug for ShardedWitnessCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedWitnessCache")
            .field("num_shards", &self.shards.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use curp_proto::op::Op;
    use curp_proto::types::{ClientId, MasterId};

    fn req(key: &str, client: u64, seq: u64) -> RecordedRequest {
        let op = Op::Put {
            key: Bytes::copy_from_slice(key.as_bytes()),
            value: Bytes::from_static(b"v"),
        };
        RecordedRequest {
            master_id: MasterId(1),
            rpc_id: RpcId::new(ClientId(client), seq),
            key_hashes: op.key_hashes(),
            op,
        }
    }

    fn multi_req(keys: &[&str], client: u64, seq: u64) -> RecordedRequest {
        let kvs: Vec<(Bytes, Bytes)> = keys
            .iter()
            .map(|k| (Bytes::copy_from_slice(k.as_bytes()), Bytes::from_static(b"v")))
            .collect();
        let op = Op::MultiPut { kvs };
        RecordedRequest {
            master_id: MasterId(1),
            rpc_id: RpcId::new(ClientId(client), seq),
            key_hashes: op.key_hashes(),
            op,
        }
    }

    fn cache() -> ShardedWitnessCache {
        ShardedWitnessCache::new(CacheConfig::default(), DEFAULT_CACHE_SHARDS)
    }

    /// Finds two key names guaranteed to live on different shards.
    fn cross_shard_keys(c: &ShardedWitnessCache) -> (String, String) {
        let a = "ck0".to_string();
        let sa = c.shard_of(KeyHash::of(a.as_bytes()));
        let b = (1..200)
            .map(|i| format!("ck{i}"))
            .find(|k| c.shard_of(KeyHash::of(k.as_bytes())) != sa)
            .expect("some key must land elsewhere");
        (a, b)
    }

    #[test]
    fn accepts_commutative_rejects_conflicting() {
        let c = cache();
        assert_eq!(c.record(req("x", 1, 1)), RecordOutcome::Accepted);
        assert_eq!(c.record(req("x", 2, 1)), RecordOutcome::ConflictingKey);
        assert_eq!(c.record(req("y", 2, 2)), RecordOutcome::Accepted);
        assert_eq!(c.occupied_slots(), 2);
    }

    #[test]
    fn cross_shard_multikey_is_all_or_nothing() {
        let c = cache();
        let (a, b) = cross_shard_keys(&c);
        // Occupy key b first: the multi-key record must be fully rejected,
        // leaving key a's shard untouched.
        assert_eq!(c.record(req(&b, 1, 1)), RecordOutcome::Accepted);
        assert_eq!(c.record(multi_req(&[&a, &b], 2, 1)), RecordOutcome::ConflictingKey);
        assert_eq!(c.occupied_slots(), 1);
        assert_eq!(c.record(req(&a, 3, 1)), RecordOutcome::Accepted);
        // And a clean cross-shard record takes one slot per key.
        let (x, y) = (format!("{a}-2"), format!("{b}-2"));
        let before = c.occupied_slots();
        let r = multi_req(&[&x, &y], 4, 1);
        let expect = r.key_hashes.len();
        assert_eq!(c.record(r), RecordOutcome::Accepted);
        assert_eq!(c.occupied_slots(), before + expect);
    }

    #[test]
    fn cross_shard_recovery_data_dedups() {
        let c = cache();
        let (a, b) = cross_shard_keys(&c);
        assert_eq!(c.record(multi_req(&[&a, &b], 1, 1)), RecordOutcome::Accepted);
        assert_eq!(c.all_requests().len(), 1, "one request despite two shards");
    }

    #[test]
    fn gc_frees_across_shards_and_ticks_all_rounds() {
        let c = cache();
        let (a, b) = cross_shard_keys(&c);
        let r = multi_req(&[&a, &b], 1, 1);
        let pairs: Vec<(KeyHash, RpcId)> = r.key_hashes.iter().map(|&kh| (kh, r.rpc_id)).collect();
        c.record(r);
        assert!(c.gc(&pairs).is_empty());
        assert_eq!(c.occupied_slots(), 0);
        // Suspicion rounds tick on every shard even when a gc batch is
        // empty: a stuck record becomes suspect after 3 empty rounds.
        let stuck = req(&a, 2, 9);
        c.record(stuck.clone());
        for _ in 0..3 {
            assert!(c.gc(&[]).is_empty());
        }
        assert_eq!(c.record(req(&a, 3, 10)), RecordOutcome::ConflictingKey);
        let suspects = c.gc(&[]);
        assert_eq!(suspects.len(), 1);
        assert_eq!(suspects[0].rpc_id, stuck.rpc_id);
    }

    #[test]
    fn commute_probe_sees_pending_writes() {
        let c = cache();
        let r = req("probe-key", 1, 1);
        let kh = r.key_hashes[0];
        c.record(r);
        assert!(!c.commutes_with_read(&[kh]));
        assert!(c.commutes_with_read(&Op::Get { key: Bytes::from_static(b"other") }.key_hashes()));
    }

    #[test]
    fn reset_clears_all_shards() {
        let c = cache();
        let (a, b) = cross_shard_keys(&c);
        c.record(multi_req(&[&a, &b], 1, 1));
        c.reset();
        assert_eq!(c.occupied_slots(), 0);
        assert!(c.all_requests().is_empty());
    }

    #[test]
    fn geometry_matches_unsharded_capacity() {
        let c = cache();
        assert_eq!(c.config().total_slots, 4096);
        let mb = c.memory_bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb > 8.0 && mb < 10.0, "got {mb:.1} MB");
    }

    #[test]
    fn shards_for_picks_divisible_counts() {
        assert_eq!(ShardedWitnessCache::shards_for(&CacheConfig::default()), 8);
        let odd = CacheConfig { total_slots: 12, associativity: 4, gc_suspicion_rounds: 3 };
        assert_eq!(ShardedWitnessCache::shards_for(&odd), 3);
        let prime = CacheConfig { total_slots: 7, associativity: 1, gc_suspicion_rounds: 3 };
        assert_eq!(ShardedWitnessCache::shards_for(&prime), 7);
    }

    #[test]
    #[should_panic(expected = "split evenly")]
    fn bad_shard_geometry_panics() {
        ShardedWitnessCache::new(CacheConfig::default(), 7);
    }

    #[test]
    fn concurrent_records_on_distinct_keys_all_land() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let c = cache();
        // Distinct keys never conflict; a rare SetFull (§B.1 false
        // conflict) is legitimate, so count acceptances instead of
        // asserting all 800 land.
        let accepted = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let (c, accepted) = (&c, &accepted);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        match c.record(req(&format!("t{t}-k{i}"), t + 1, i + 1)) {
                            RecordOutcome::Accepted => {
                                accepted.fetch_add(1, Ordering::Relaxed);
                            }
                            RecordOutcome::SetFull => {}
                            RecordOutcome::ConflictingKey => {
                                panic!("distinct keys must never key-conflict")
                            }
                        }
                    }
                });
            }
        });
        let accepted = accepted.load(Ordering::Relaxed);
        assert_eq!(c.occupied_slots(), accepted);
        assert!(accepted >= 780, "far too many false conflicts: {accepted}/800");
    }
}
