//! The witness server: life cycle and RPC dispatch (§4.1, Figure 4).
//!
//! A witness *instance* serves exactly one master and moves through two
//! modes:
//!
//! ```text
//! start(masterId) ──► Normal ──getRecoveryData──► Recovery ──end──► gone
//!                     record/gc                   getRecoveryData only
//! ```
//!
//! The recovery transition is irreversible: once any recovering master has
//! read the witness, accepting further records would let clients complete
//! updates that will never be replayed (§4.6). A [`WitnessService`] hosts
//! one instance per master, so a single server process can serve several
//! partitions (witnesses "can be co-hosted with backups", §3.1).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use curp_proto::lockrank;
use curp_proto::message::{RecordedRequest, Request, Response};
use curp_proto::types::{KeyHash, MasterId, RpcId};
use parking_lot::{Mutex, RwLock};

use crate::cache::{CacheConfig, RecordOutcome};
use crate::sharded::ShardedWitnessCache;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Normal,
    Recovery,
}

/// One master's witness instance. Shared (`Arc`) so the instance map lock
/// is held only for the lookup: record/gc traffic for one master never
/// blocks another master's instance, and records on disjoint keys within
/// one instance only contend on their cache shard.
///
/// The mode is behind a read-write lock: records and gcs hold it shared,
/// the irreversible freeze (`getRecoveryData`) takes it exclusively — so a
/// freeze waits out in-flight records and nothing can record after it.
struct Instance {
    cache: ShardedWitnessCache,
    mode: RwLock<Mode>,
}

/// Counters for the §5.2 resource-consumption measurements.
#[derive(Debug, Default, Clone, Copy)]
pub struct WitnessCounters {
    /// `record` RPCs accepted.
    pub accepted: u64,
    /// `record` RPCs rejected (any reason).
    pub rejected: u64,
    /// gc RPCs processed.
    pub gcs: u64,
}

/// A witness server hosting one instance per master.
pub struct WitnessService {
    config: CacheConfig,
    cache_shards: usize,
    instances: Mutex<HashMap<MasterId, Arc<Instance>>>,
    accepted: AtomicU64,
    rejected: AtomicU64,
    gcs: AtomicU64,
}

impl WitnessService {
    /// Creates a server whose instances use `config` for their caches,
    /// sharded per [`ShardedWitnessCache::shards_for`].
    pub fn new(config: CacheConfig) -> Self {
        WitnessService {
            config,
            cache_shards: ShardedWitnessCache::shards_for(&config),
            instances: Mutex::ranked(
                lockrank::WITNESS_INSTANCES,
                "witness.service.instances",
                HashMap::new(),
            ),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            gcs: AtomicU64::new(0),
        }
    }

    fn instance(&self, master: MasterId) -> Option<Arc<Instance>> {
        self.instances.lock().get(&master).cloned()
    }

    /// `start(masterId)`: creates an instance. Fails if one already exists
    /// for this master (Figure 4: returns FAIL).
    pub fn start(&self, master: MasterId) -> bool {
        let mut instances = self.instances.lock();
        if instances.contains_key(&master) {
            return false;
        }
        instances.insert(
            master,
            Arc::new(Instance {
                cache: ShardedWitnessCache::new(self.config, self.cache_shards),
                mode: RwLock::ranked(lockrank::WITNESS_MODE, "witness.instance.mode", Mode::Normal),
            }),
        );
        true
    }

    /// `record(...)`: accepts iff the instance exists, is in normal mode,
    /// was started for `request.master_id`, and the cache accepts.
    pub fn record(&self, request: RecordedRequest) -> bool {
        let accepted = match self.instance(request.master_id) {
            Some(inst) => {
                let mode = inst.mode.read();
                *mode == Mode::Normal && inst.cache.record(request) == RecordOutcome::Accepted
            }
            // Unknown master: reject (§4.1 — "by accepting only requests
            // for the correct master, CURP prevents clients from recording
            // to incorrect witnesses").
            None => false,
        };
        if accepted {
            self.accepted.fetch_add(1, Ordering::Relaxed);
        } else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
        }
        accepted
    }

    /// `gc(...)`: frees collected slots, returns suspected stale requests.
    /// Ignored (empty response) in recovery mode — the data is frozen.
    pub fn gc(&self, master: MasterId, entries: &[(KeyHash, RpcId)]) -> Vec<RecordedRequest> {
        self.gcs.fetch_add(1, Ordering::Relaxed);
        match self.instance(master) {
            Some(inst) => {
                let mode = inst.mode.read();
                if *mode == Mode::Normal {
                    inst.cache.gc(entries)
                } else {
                    Vec::new()
                }
            }
            None => Vec::new(),
        }
    }

    /// `getRecoveryData()`: irreversibly freezes the instance and returns
    /// everything it holds. Unknown instances yield an empty list (the
    /// witness may have been started after the crash). The exclusive mode
    /// lock waits out in-flight records, so the returned data is final.
    pub fn get_recovery_data(&self, master: MasterId) -> Vec<RecordedRequest> {
        match self.instance(master) {
            Some(inst) => {
                let mut mode = inst.mode.write();
                *mode = Mode::Recovery;
                inst.cache.all_requests()
            }
            None => Vec::new(),
        }
    }

    /// §A.1 probe: do the given keys commute with everything stored?
    /// In recovery mode the answer is conservatively `false` (reads must go
    /// to the master during recovery).
    pub fn commutes_with_read(&self, master: MasterId, key_hashes: &[KeyHash]) -> bool {
        match self.instance(master) {
            Some(inst) => {
                let mode = inst.mode.read();
                *mode == Mode::Normal && inst.cache.commutes_with_read(key_hashes)
            }
            None => false,
        }
    }

    /// `end()`: destroys the instance, freeing its slots for a new life.
    /// A straggler still holding the instance handle sees it frozen, so no
    /// record can slip in after the destruction is observable.
    pub fn end(&self, master: MasterId) {
        // Drop the map lock before freezing: the mode write-lock waits out
        // in-flight records/gcs for *this* master, and holding the map lock
        // through that wait would stall every other master's traffic.
        let removed = self.instances.lock().remove(&master);
        if let Some(inst) = removed {
            *inst.mode.write() = Mode::Recovery;
        }
    }

    /// Whether an instance exists and is frozen (test/diagnostic accessor).
    pub fn is_recovering(&self, master: MasterId) -> bool {
        self.instance(master).map(|i| *i.mode.read() == Mode::Recovery).unwrap_or(false)
    }

    /// Occupied slots for `master`'s instance (diagnostics).
    pub fn occupancy(&self, master: MasterId) -> usize {
        self.instance(master).map(|i| i.cache.occupied_slots()).unwrap_or(0)
    }

    /// Snapshot of the service counters.
    pub fn counters(&self) -> WitnessCounters {
        WitnessCounters {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            gcs: self.gcs.load(Ordering::Relaxed),
        }
    }

    /// Dispatches a witness-directed [`Request`]. Non-witness requests get a
    /// [`Response::Retry`] (the caller addressed the wrong server).
    pub fn handle_request(&self, req: &Request) -> Response {
        match req {
            Request::WitnessStart { master_id } => {
                Response::WitnessStarted { ok: self.start(*master_id) }
            }
            Request::WitnessRecord { request } => {
                if self.record(request.clone()) {
                    Response::RecordAccepted
                } else {
                    Response::RecordRejected
                }
            }
            Request::WitnessGc { master_id, entries } => {
                Response::GcDone { stale: self.gc(*master_id, entries) }
            }
            Request::WitnessGetRecoveryData { master_id } => {
                Response::RecoveryData { requests: self.get_recovery_data(*master_id) }
            }
            Request::WitnessCommuteCheck { master_id, key_hashes } => {
                Response::CommuteOk { commutative: self.commutes_with_read(*master_id, key_hashes) }
            }
            Request::WitnessEnd { master_id } => {
                self.end(*master_id);
                Response::WitnessEnded
            }
            _ => Response::Retry { reason: "not a witness request".into() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use curp_proto::op::Op;
    use curp_proto::types::ClientId;

    const M: MasterId = MasterId(1);

    fn req(master: MasterId, key: &str, client: u64, seq: u64) -> RecordedRequest {
        let op = Op::Put {
            key: Bytes::copy_from_slice(key.as_bytes()),
            value: Bytes::from_static(b"v"),
        };
        RecordedRequest {
            master_id: master,
            rpc_id: RpcId::new(ClientId(client), seq),
            key_hashes: op.key_hashes(),
            op,
        }
    }

    fn service() -> WitnessService {
        let s = WitnessService::new(CacheConfig::default());
        assert!(s.start(M));
        s
    }

    #[test]
    fn lifecycle_start_record_recover_end() {
        let s = service();
        assert!(s.record(req(M, "x", 1, 1)));
        let data = s.get_recovery_data(M);
        assert_eq!(data.len(), 1);
        assert!(s.is_recovering(M));
        // Frozen: no new records.
        assert!(!s.record(req(M, "y", 1, 2)));
        // getRecoveryData is repeatable (another recovery master may retry).
        assert_eq!(s.get_recovery_data(M).len(), 1);
        s.end(M);
        // After end, a new life can begin.
        assert!(s.start(M));
        assert!(s.record(req(M, "y", 1, 3)));
    }

    #[test]
    fn double_start_fails() {
        let s = service();
        assert!(!s.start(M));
    }

    #[test]
    fn records_for_unknown_master_rejected() {
        let s = service();
        assert!(!s.record(req(MasterId(99), "x", 1, 1)));
    }

    #[test]
    fn instances_are_independent() {
        let s = service();
        assert!(s.start(MasterId(2)));
        assert!(s.record(req(M, "x", 1, 1)));
        // Same key for a different master's instance: no conflict.
        assert!(s.record(req(MasterId(2), "x", 2, 1)));
        // Freezing master 2 leaves master 1 live.
        s.get_recovery_data(MasterId(2));
        assert!(s.record(req(M, "y", 1, 2)));
        assert!(!s.record(req(MasterId(2), "y", 2, 2)));
    }

    #[test]
    fn gc_ignored_in_recovery_mode() {
        let s = service();
        let r = req(M, "x", 1, 1);
        let pair = (r.key_hashes[0], r.rpc_id);
        s.record(r);
        s.get_recovery_data(M);
        s.gc(M, &[pair]);
        assert_eq!(s.occupancy(M), 1, "frozen data must not be mutated");
    }

    #[test]
    fn commute_check_conservative_during_recovery() {
        let s = service();
        let probe = Op::Get { key: Bytes::from_static(b"nothing") }.key_hashes();
        assert!(s.commutes_with_read(M, &probe));
        s.get_recovery_data(M);
        assert!(!s.commutes_with_read(M, &probe), "recovery mode must fail probes");
    }

    #[test]
    fn counters_track_outcomes() {
        let s = service();
        s.record(req(M, "x", 1, 1));
        s.record(req(M, "x", 2, 1)); // conflict
        s.gc(M, &[]);
        let c = s.counters();
        assert_eq!((c.accepted, c.rejected, c.gcs), (1, 1, 1));
    }

    #[test]
    fn rpc_dispatch_covers_witness_surface() {
        let s = WitnessService::new(CacheConfig::default());
        assert_eq!(
            s.handle_request(&Request::WitnessStart { master_id: M }),
            Response::WitnessStarted { ok: true }
        );
        let r = req(M, "x", 1, 1);
        assert_eq!(
            s.handle_request(&Request::WitnessRecord { request: r.clone() }),
            Response::RecordAccepted
        );
        assert_eq!(
            s.handle_request(&Request::WitnessRecord { request: req(M, "x", 2, 1) }),
            Response::RecordRejected
        );
        assert_eq!(
            s.handle_request(&Request::WitnessCommuteCheck {
                master_id: M,
                key_hashes: r.key_hashes.clone()
            }),
            Response::CommuteOk { commutative: false }
        );
        assert_eq!(
            s.handle_request(&Request::WitnessGc { master_id: M, entries: vec![] }),
            Response::GcDone { stale: vec![] }
        );
        match s.handle_request(&Request::WitnessGetRecoveryData { master_id: M }) {
            Response::RecoveryData { requests } => assert_eq!(requests.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.handle_request(&Request::WitnessEnd { master_id: M }), Response::WitnessEnded);
        assert!(matches!(
            s.handle_request(&Request::Sync { master_id: MasterId(1) }),
            Response::Retry { .. }
        ));
    }
}
