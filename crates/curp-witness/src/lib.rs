//! The CURP witness (§3.2.2, §4.1–4.2).
//!
//! Witnesses are the temporary, unordered durability store that lets CURP
//! clients complete updates in 1 RTT: a client records its request on all
//! `f` witnesses in parallel with sending it to the master, and a witness
//! accepts the record only if it commutes with *every* request it currently
//! holds — so whatever a witness holds can be replayed in any order during
//! recovery.
//!
//! * [`cache`] — the set-associative request cache (§4.2, §B.1): slot lookup
//!   by key hash, per-key conflict detection, uncollected-garbage tracking.
//! * [`sharded`] — the same cache split by key hash with per-shard locks,
//!   so commuting records (the only ones a witness accepts) land without
//!   contending on one lock.
//! * [`service`] — the witness life cycle (§4.1): `start` → normal mode
//!   (record/gc) → `getRecoveryData` irreversibly enters recovery mode →
//!   `end`. One server can host instances for several masters; each lives
//!   behind its own lock, so traffic for one master never blocks another's.
//! * [`persist`] — an optional write-ahead journal standing in for the
//!   paper's flash-backed DRAM: witness state survives process restarts.

pub mod cache;
pub mod persist;
pub mod service;
pub mod sharded;

pub use cache::{CacheConfig, RecordOutcome, WitnessCache};
pub use persist::JournaledWitness;
pub use service::WitnessService;
pub use sharded::ShardedWitnessCache;
