//! The set-associative witness request cache (§4.2, §B.1).
//!
//! Recording is "similar to inserting in a set-associative cache": the key
//! hash selects a set, the request is written into a free slot of that set,
//! and the record is rejected if the set already holds a request on the same
//! key (non-commutative) or has no free slot (false conflict). Multi-object
//! operations occupy one slot per touched key and must pass the check for
//! every key (§4.2).
//!
//! §B.1 motivates the associativity: a direct-mapped table of 4096 slots
//! sees a false conflict after ~80 insertions; 4-way associativity pushes
//! that far out. Figure 11 regenerates that simulation using this exact
//! implementation.

use std::collections::HashSet;
use std::sync::Arc;

use curp_proto::footprint::InlineVec;
use curp_proto::message::RecordedRequest;
use curp_proto::types::{KeyHash, RpcId};

/// Sizing of a witness cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total slot count (must be a multiple of `associativity`).
    /// The paper's witnesses allocate 4096 slots per master (§5.2).
    pub total_slots: usize,
    /// Slots per set: 1 = direct-mapped, 4 = the paper's choice (§B.1).
    pub associativity: usize,
    /// A record that survives this many gc rounds after a rejection pointed
    /// at it is reported as suspected uncollected garbage (§4.5 suggests 3).
    pub gc_suspicion_rounds: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { total_slots: 4096, associativity: 4, gc_suspicion_rounds: 3 }
    }
}

/// Why a record was rejected (internal detail; the wire response only says
/// accepted/rejected, but tests and metrics want the reason).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordOutcome {
    /// Stored in every relevant set.
    Accepted,
    /// A stored request touches one of the same keys: not commutative.
    ConflictingKey,
    /// A needed set had no free slot (false conflict, §B.1).
    SetFull,
}

#[derive(Debug, Clone)]
struct Slot {
    key_hash: KeyHash,
    rpc_id: RpcId,
    /// Shared so a multi-key request is stored once, referenced n times.
    request: Arc<RecordedRequest>,
    /// Gc round in which this slot was written.
    recorded_round: u64,
}

/// The cache proper. Not thread-safe; the owning service serializes access
/// (witness servers are single-threaded in the paper, §5.2).
#[derive(Debug)]
pub struct WitnessCache {
    config: CacheConfig,
    num_sets: usize,
    /// `num_sets * associativity` slots, set-major.
    slots: Vec<Option<Slot>>,
    /// Monotonic count of gc RPCs processed (the "rounds" of §4.5).
    gc_round: u64,
    /// Requests suspected to be uncollected garbage, drained by the next gc
    /// response (§4.5), in first-suspected order.
    suspects: Vec<Arc<RecordedRequest>>,
    /// Rpc ids present in `suspects` — O(1) duplicate suppression (a hot
    /// conflicting key can re-suspect the same stuck record on every
    /// rejection between two gc rounds).
    suspect_ids: HashSet<RpcId>,
    occupied: usize,
}

impl WitnessCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    /// Panics if `total_slots` is zero or not a multiple of `associativity`.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.total_slots > 0 && config.associativity > 0);
        assert_eq!(
            config.total_slots % config.associativity,
            0,
            "total_slots must be a multiple of associativity"
        );
        let num_sets = config.total_slots / config.associativity;
        WitnessCache {
            config,
            num_sets,
            slots: vec![None; config.total_slots],
            gc_round: 0,
            suspects: Vec::new(),
            suspect_ids: HashSet::new(),
            occupied: 0,
        }
    }

    /// The sizing this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of occupied slots.
    pub fn occupied_slots(&self) -> usize {
        self.occupied
    }

    /// Approximate memory footprint, using the paper's 2 KB-per-slot storage
    /// layout (§5.2: 4096 slots × 2 KB ≈ 9 MB with metadata).
    pub fn memory_bytes(&self) -> usize {
        const SLOT_STORAGE: usize = 2048;
        self.config.total_slots * (SLOT_STORAGE + std::mem::size_of::<Option<Slot>>())
    }

    fn set_range(&self, h: KeyHash) -> std::ops::Range<usize> {
        let set = (h.0 as usize) % self.num_sets;
        let start = set * self.config.associativity;
        start..start + self.config.associativity
    }

    /// Scans `kh`'s set for the §4.2 admission check. Returns the free slot
    /// to claim, or the rejection outcome. `taken` holds slots already
    /// claimed by earlier keys of the same multi-key request, so two keys
    /// mapping to one set each get their own slot.
    ///
    /// A conflict with a record that has lingered through several gc rounds
    /// reports it as suspected uncollected garbage (§4.5).
    pub(crate) fn find_free_slot(
        &mut self,
        kh: KeyHash,
        taken: &[usize],
    ) -> Result<usize, RecordOutcome> {
        let mut free = None;
        for idx in self.set_range(kh) {
            match &self.slots[idx] {
                Some(slot) if slot.key_hash == kh => {
                    let suspect = (self.gc_round.saturating_sub(slot.recorded_round)
                        >= self.config.gc_suspicion_rounds)
                        .then(|| Arc::clone(&slot.request));
                    if let Some(req) = suspect {
                        self.add_suspect(req);
                    }
                    return Err(RecordOutcome::ConflictingKey);
                }
                Some(_) => {}
                None if free.is_none() && !taken.contains(&idx) => free = Some(idx),
                None => {}
            }
        }
        free.ok_or(RecordOutcome::SetFull)
    }

    fn add_suspect(&mut self, req: Arc<RecordedRequest>) {
        if self.suspect_ids.insert(req.rpc_id) {
            self.suspects.push(req);
        }
    }

    pub(crate) fn commit_slot(&mut self, idx: usize, kh: KeyHash, request: &Arc<RecordedRequest>) {
        self.slots[idx] = Some(Slot {
            key_hash: kh,
            rpc_id: request.rpc_id,
            request: Arc::clone(request),
            recorded_round: self.gc_round,
        });
        self.occupied += 1;
    }

    /// Attempts to record `request`. All-or-nothing: either every touched
    /// key gets a slot or nothing is written.
    ///
    /// Validation runs *before* the shared [`Arc`] is allocated, so a
    /// rejection — the answer the witness gives for every conflicting or
    /// false-conflicting record — performs no heap allocation at all.
    /// Single-key requests (everything but `MultiPut`) also skip the
    /// claimed-slot bookkeeping entirely.
    pub fn record(&mut self, request: RecordedRequest) -> RecordOutcome {
        if let [kh] = *request.key_hashes.as_slice() {
            // Single-key fast path: one set probe, then commit.
            match self.find_free_slot(kh, &[]) {
                Ok(idx) => {
                    let request = Arc::new(request);
                    self.commit_slot(idx, kh, &request);
                    RecordOutcome::Accepted
                }
                Err(outcome) => outcome,
            }
        } else {
            // Multi-key: claim a slot per key (inline bookkeeping for up to
            // four keys), then commit all-or-nothing.
            let mut chosen: InlineVec<usize, 4> = InlineVec::new();
            for &kh in &request.key_hashes {
                match self.find_free_slot(kh, &chosen) {
                    Ok(idx) => chosen.push(idx),
                    Err(outcome) => return outcome,
                }
            }
            let request = Arc::new(request);
            for (&kh, &idx) in request.key_hashes.iter().zip(chosen.iter()) {
                self.commit_slot(idx, kh, &request);
            }
            RecordOutcome::Accepted
        }
    }

    /// Returns `true` if a read of `key_hashes` commutes with every stored
    /// request (§A.1 backup-read probe): no stored request touches any of
    /// the probed keys.
    pub fn commutes_with_read(&self, key_hashes: &[KeyHash]) -> bool {
        key_hashes.iter().all(|&kh| {
            self.set_range(kh).all(|idx| match &self.slots[idx] {
                Some(slot) => slot.key_hash != kh,
                None => true,
            })
        })
    }

    /// Frees the slots named by `(key_hash, rpc_id)` pairs; unknown pairs are
    /// ignored ("the record RPCs might have been rejected", §4.5). Counts as
    /// one gc round and returns any suspected uncollected garbage.
    pub fn gc(&mut self, entries: &[(KeyHash, RpcId)]) -> Vec<RecordedRequest> {
        self.gc_round += 1;
        for &(kh, rpc_id) in entries {
            for idx in self.set_range(kh) {
                let matches = matches!(
                    &self.slots[idx],
                    Some(slot) if slot.key_hash == kh && slot.rpc_id == rpc_id
                );
                if matches {
                    self.slots[idx] = None;
                    self.occupied -= 1;
                }
            }
        }
        // Drop suspects that the gc we just applied actually collected. The
        // suspect list empties on every gc round, so the id set does too.
        // Collected ids are deduped into a set first: the filter was
        // O(suspects × entries), which a big sync batch turned quadratic.
        self.suspect_ids.clear();
        if self.suspects.is_empty() {
            return Vec::new();
        }
        let collected: HashSet<RpcId> = entries.iter().map(|&(_, rid)| rid).collect();
        self.suspects
            .drain(..)
            .filter(|s| !collected.contains(&s.rpc_id))
            .map(|s| (*s).clone())
            .collect()
    }

    /// All distinct requests currently stored (recovery data, §4.6).
    /// Multi-key requests are deduplicated by rpc id.
    pub fn all_requests(&self) -> Vec<RecordedRequest> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for slot in self.slots.iter().flatten() {
            if seen.insert(slot.rpc_id) {
                out.push((*slot.request).clone());
            }
        }
        out
    }

    /// Clears everything (used when a master resets its witnesses after a
    /// migration sync, §3.6).
    pub fn reset(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.occupied = 0;
        self.suspects.clear();
        self.suspect_ids.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use curp_proto::op::Op;
    use curp_proto::types::{ClientId, MasterId};

    fn req(key: &str, client: u64, seq: u64) -> RecordedRequest {
        let k = Bytes::copy_from_slice(key.as_bytes());
        let op = Op::Put { key: k, value: Bytes::from_static(b"v") };
        RecordedRequest {
            master_id: MasterId(1),
            rpc_id: RpcId::new(ClientId(client), seq),
            key_hashes: op.key_hashes(),
            op,
        }
    }

    fn multi_req(keys: &[&str], client: u64, seq: u64) -> RecordedRequest {
        let kvs: Vec<(Bytes, Bytes)> = keys
            .iter()
            .map(|k| (Bytes::copy_from_slice(k.as_bytes()), Bytes::from_static(b"v")))
            .collect();
        let op = Op::MultiPut { kvs };
        RecordedRequest {
            master_id: MasterId(1),
            rpc_id: RpcId::new(ClientId(client), seq),
            key_hashes: op.key_hashes(),
            op,
        }
    }

    fn cache() -> WitnessCache {
        WitnessCache::new(CacheConfig::default())
    }

    #[test]
    fn accepts_commutative_rejects_conflicting() {
        let mut c = cache();
        assert_eq!(c.record(req("x", 1, 1)), RecordOutcome::Accepted);
        // Same key, different client: "x <- 1" then "x <- 5" (§3.2.2).
        assert_eq!(c.record(req("x", 2, 1)), RecordOutcome::ConflictingKey);
        // Different key commutes.
        assert_eq!(c.record(req("y", 2, 2)), RecordOutcome::Accepted);
        assert_eq!(c.occupied_slots(), 2);
    }

    #[test]
    fn gc_frees_and_allows_rerecord() {
        let mut c = cache();
        let r = req("x", 1, 1);
        let kh = r.key_hashes[0];
        c.record(r);
        assert!(c.gc(&[(kh, RpcId::new(ClientId(1), 1))]).is_empty());
        assert_eq!(c.occupied_slots(), 0);
        assert_eq!(c.record(req("x", 2, 2)), RecordOutcome::Accepted);
    }

    #[test]
    fn gc_of_unknown_pair_is_ignored() {
        let mut c = cache();
        c.record(req("x", 1, 1));
        let ghost = req("zzz", 9, 9);
        c.gc(&[(ghost.key_hashes[0], ghost.rpc_id)]);
        assert_eq!(c.occupied_slots(), 1);
    }

    #[test]
    fn gc_requires_matching_rpc_id() {
        let mut c = cache();
        let r = req("x", 1, 1);
        let kh = r.key_hashes[0];
        c.record(r);
        // Same key but wrong rpc id: must not free (a *newer* record on the
        // same key may exist after the gc'd one was collected).
        c.gc(&[(kh, RpcId::new(ClientId(1), 99))]);
        assert_eq!(c.occupied_slots(), 1);
    }

    #[test]
    fn multikey_occupies_one_slot_per_key() {
        let mut c = cache();
        assert_eq!(c.record(multi_req(&["a", "b", "c"], 1, 1)), RecordOutcome::Accepted);
        assert_eq!(c.occupied_slots(), 3);
        // Any overlapping key conflicts.
        assert_eq!(c.record(req("b", 2, 1)), RecordOutcome::ConflictingKey);
        // Recovery data deduplicates the request.
        assert_eq!(c.all_requests().len(), 1);
    }

    #[test]
    fn multikey_rejection_leaves_nothing_behind() {
        let mut c = cache();
        c.record(req("b", 1, 1));
        // a commutes, b conflicts -> whole record rejected, a not stored.
        assert_eq!(c.record(multi_req(&["a", "b"], 2, 1)), RecordOutcome::ConflictingKey);
        assert_eq!(c.occupied_slots(), 1);
        assert_eq!(c.record(req("a", 3, 1)), RecordOutcome::Accepted);
    }

    #[test]
    fn direct_mapped_set_fills_up() {
        // 4 slots, direct-mapped: the 5th distinct key must collide with one
        // of the 4 sets even though all keys differ.
        let mut c = WitnessCache::new(CacheConfig {
            total_slots: 4,
            associativity: 1,
            gc_suspicion_rounds: 3,
        });
        let mut rejected = false;
        for i in 0..5 {
            if c.record(req(&format!("key-{i}"), 1, i + 1)) == RecordOutcome::SetFull {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "pigeonhole: 5 keys cannot fit 4 direct-mapped sets");
    }

    #[test]
    fn associativity_absorbs_set_collisions() {
        // Same capacity, 4-way: any 4 keys fit regardless of mapping.
        let mut c = WitnessCache::new(CacheConfig {
            total_slots: 4,
            associativity: 4,
            gc_suspicion_rounds: 3,
        });
        for i in 0..4 {
            assert_eq!(c.record(req(&format!("key-{i}"), 1, i + 1)), RecordOutcome::Accepted);
        }
        assert_eq!(c.record(req("key-4", 1, 9)), RecordOutcome::SetFull);
    }

    #[test]
    fn commute_probe_detects_pending_write() {
        let mut c = cache();
        let r = req("x", 1, 1);
        let kh = r.key_hashes[0];
        c.record(r);
        assert!(!c.commutes_with_read(&[kh]));
        let other = Op::Get { key: Bytes::from_static(b"unrelated") }.key_hashes();
        assert!(c.commutes_with_read(&other));
    }

    #[test]
    fn suspicion_after_repeated_gc_rounds() {
        let mut c = cache();
        let stuck = req("x", 1, 1);
        let kh = stuck.key_hashes[0];
        c.record(stuck.clone());
        // Three gc rounds pass without collecting the record.
        for _ in 0..3 {
            assert!(c.gc(&[]).is_empty());
        }
        // A rejection against it flags it as suspected garbage...
        assert_eq!(c.record(req("x", 2, 5)), RecordOutcome::ConflictingKey);
        // ...which the next gc response carries to the master.
        let suspects = c.gc(&[]);
        assert_eq!(suspects.len(), 1);
        assert_eq!(suspects[0].rpc_id, stuck.rpc_id);
        // Master retries + gc's it; suspicion clears.
        let cleared = c.gc(&[(kh, stuck.rpc_id)]);
        assert!(cleared.is_empty());
        assert_eq!(c.occupied_slots(), 0);
    }

    #[test]
    fn repeated_rejections_suspect_once() {
        // A hot conflicting key re-suspects the same stuck record on every
        // rejection; the id set must collapse them to one report.
        let mut c = cache();
        let stuck = req("x", 1, 1);
        c.record(stuck.clone());
        for _ in 0..3 {
            assert!(c.gc(&[]).is_empty());
        }
        for seq in 10..20 {
            assert_eq!(c.record(req("x", 2, seq)), RecordOutcome::ConflictingKey);
        }
        let suspects = c.gc(&[]);
        assert_eq!(suspects.len(), 1);
        assert_eq!(suspects[0].rpc_id, stuck.rpc_id);
        // The drain cleared the id set: a fresh rejection re-reports.
        assert_eq!(c.record(req("x", 2, 99)), RecordOutcome::ConflictingKey);
        assert_eq!(c.gc(&[]).len(), 1);
    }

    #[test]
    fn young_records_are_not_suspected() {
        let mut c = cache();
        c.record(req("x", 1, 1));
        assert_eq!(c.record(req("x", 2, 1)), RecordOutcome::ConflictingKey);
        assert!(c.gc(&[]).is_empty(), "record is too young to suspect");
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = cache();
        c.record(multi_req(&["a", "b"], 1, 1));
        c.reset();
        assert_eq!(c.occupied_slots(), 0);
        assert!(c.all_requests().is_empty());
        assert_eq!(c.record(req("a", 1, 2)), RecordOutcome::Accepted);
    }

    #[test]
    #[should_panic(expected = "multiple of associativity")]
    fn bad_geometry_panics() {
        WitnessCache::new(CacheConfig {
            total_slots: 10,
            associativity: 4,
            gc_suspicion_rounds: 3,
        });
    }

    #[test]
    fn memory_accounting_matches_paper_scale() {
        let c = cache();
        let mb = c.memory_bytes() as f64 / (1024.0 * 1024.0);
        // §5.2: "total memory overhead per master-witness pair is around 9MB".
        assert!(mb > 8.0 && mb < 10.0, "got {mb:.1} MB");
    }
}
