//! Open-loop (fixed-arrival-rate) load generation.
//!
//! A *closed-loop* client issues its next operation only after the previous
//! one completes, so offered load falls whenever the system slows down —
//! latency figures measured that way hide queueing. An *open-loop* driver
//! issues operations on a fixed arrival schedule regardless of completions:
//! when the system falls behind, requests queue and measured latency grows
//! without bound, which is exactly the saturation/tail behaviour the paper's
//! latency-vs-throughput figures (Figure 13) probe. This module provides the
//! schedule and measurement half; the system-specific submission (which
//! client, which transport) is a closure supplied by the caller.
//!
//! Latency is measured from an operation's **scheduled arrival** to its
//! completion, so time spent queueing behind a saturated system counts —
//! the defining property of open-loop measurement (avoids coordinated
//! omission).

use std::future::Future;
use std::time::Duration;

use rand::RngCore;

use crate::latency::LatencyRecorder;
use crate::ycsb::{Workload, WorkloadOp};

/// Arrival schedule for one open-loop run.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Fixed inter-arrival gap (the offered rate is `1 / interval`).
    pub interval: Duration,
    /// Total operations to issue.
    pub ops: u64,
}

/// What one open-loop run observed.
#[derive(Debug)]
pub struct OpenLoopReport {
    /// Operations issued (always `config.ops`).
    pub issued: u64,
    /// Operations whose submission future resolved `true`.
    pub completed: u64,
    /// Operations whose submission future resolved `false`.
    pub failed: u64,
    /// Scheduled-arrival-to-completion latencies, one sample per issued op.
    pub latency: LatencyRecorder,
    /// Time from the first scheduled arrival to the last completion.
    pub elapsed: Duration,
}

impl OpenLoopReport {
    /// Completed operations per second of elapsed time.
    ///
    /// `time_unit` is the duration of one caller-level second: pass
    /// `Duration::from_secs(1)` for wall-clock runs, or the virtual-time
    /// inflation (e.g. 1 virtual second = 1 000 000 tokio seconds) for
    /// simulated runs.
    pub fn throughput(&self, time_unit: Duration) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.completed as f64 * time_unit.as_secs_f64() / self.elapsed.as_secs_f64()
    }
}

/// Runs one open-loop pass over `workload`.
///
/// Every `config.interval`, the driver draws the next operation and calls
/// `submit` with it; the returned future is spawned immediately (arrivals
/// never wait for completions) and must resolve to `true` on success. Any
/// backpressure the submission path applies — e.g. a pipelined client's
/// window — happens *inside* the spawned future, so it delays that
/// operation (and is charged to its latency) without perturbing the arrival
/// schedule.
pub async fn run_open_loop<S, F>(
    workload: &mut Workload,
    rng: &mut dyn RngCore,
    config: OpenLoopConfig,
    mut submit: S,
) -> OpenLoopReport
where
    S: FnMut(WorkloadOp) -> F,
    F: Future<Output = bool> + Send + 'static,
{
    let (tx, mut rx) = tokio::sync::mpsc::unbounded_channel::<(Duration, bool)>();
    let start = tokio::time::Instant::now();
    for i in 0..config.ops {
        let offset = Duration::from_nanos((config.interval.as_nanos() as u64).saturating_mul(i));
        let scheduled = start + offset;
        tokio::time::sleep_until(scheduled).await;
        let fut = submit(workload.next_op(rng));
        let tx = tx.clone();
        tokio::spawn(async move {
            let ok = fut.await;
            let _ = tx.send((scheduled.elapsed(), ok));
        });
    }
    drop(tx);
    let mut latency = LatencyRecorder::new();
    let (mut completed, mut failed) = (0u64, 0u64);
    while let Some((lat, ok)) = rx.recv().await {
        latency.record(lat);
        if ok {
            completed += 1;
        } else {
            failed += 1;
        }
    }
    OpenLoopReport { issued: config.ops, completed, failed, latency, elapsed: start.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn sim<F: Future>(fut: F) -> F::Output {
        let rt = tokio::runtime::Builder::new_current_thread()
            .enable_time()
            .start_paused(true)
            .build()
            .unwrap();
        rt.block_on(fut)
    }

    #[test]
    fn arrivals_follow_the_schedule_not_the_completions() {
        // Each op takes 100 ms to complete, arrivals come every 10 ms: a
        // closed loop would need 100 ms/op, the open loop still issues all
        // 20 ops inside ~200 ms of schedule + one service time.
        sim(async {
            let mut w = Workload::uniform_writes(100);
            let mut rng = StdRng::seed_from_u64(1);
            let cfg = OpenLoopConfig { interval: Duration::from_millis(10), ops: 20 };
            let report = run_open_loop(&mut w, &mut rng, cfg, |_op| async {
                tokio::time::sleep(Duration::from_millis(100)).await;
                true
            })
            .await;
            assert_eq!(report.issued, 20);
            assert_eq!(report.completed, 20);
            assert_eq!(report.failed, 0);
            // Last arrival at 190 ms + 100 ms service.
            assert_eq!(report.elapsed, Duration::from_millis(290));
        });
    }

    #[test]
    fn latency_includes_queueing_from_scheduled_arrival() {
        // A server that serializes ops with 30 ms service time against a
        // 10 ms arrival interval: the queue grows, so later ops see larger
        // scheduled-arrival latency even though service time is constant.
        sim(async {
            let mut w = Workload::uniform_writes(100);
            let mut rng = StdRng::seed_from_u64(2);
            let gate = Arc::new(tokio::sync::Mutex::new(()));
            let cfg = OpenLoopConfig { interval: Duration::from_millis(10), ops: 10 };
            let report = run_open_loop(&mut w, &mut rng, cfg, |_op| {
                let gate = Arc::clone(&gate);
                async move {
                    let _g = gate.lock().await;
                    tokio::time::sleep(Duration::from_millis(30)).await;
                    true
                }
            })
            .await;
            let mut lat = report.latency;
            // First op runs immediately: exactly its 30 ms service time.
            assert_eq!(lat.quantile_ns(0.0), 30_000_000);
            // The server stays busy until 300 ms; whichever op drains last
            // arrived by 90 ms, so the worst latency is 210–300 ms — far
            // above service time, because queueing is charged to the op.
            let worst = lat.quantile_ns(1.0);
            assert!((210_000_000..=300_000_000).contains(&worst), "worst-case latency {worst} ns");
        });
    }

    #[test]
    fn failures_are_counted_separately() {
        sim(async {
            let mut w = Workload::uniform_writes(100);
            let mut rng = StdRng::seed_from_u64(3);
            let n = Arc::new(AtomicU64::new(0));
            let cfg = OpenLoopConfig { interval: Duration::from_millis(1), ops: 10 };
            let report = run_open_loop(&mut w, &mut rng, cfg, |_op| {
                let n = Arc::clone(&n);
                async move { n.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) }
            })
            .await;
            assert_eq!(report.completed, 5);
            assert_eq!(report.failed, 5);
            assert_eq!(report.latency.len(), 10);
        });
    }

    #[test]
    fn throughput_respects_the_time_unit() {
        let report = OpenLoopReport {
            issued: 100,
            completed: 100,
            failed: 0,
            latency: LatencyRecorder::new(),
            elapsed: Duration::from_secs(2),
        };
        assert!((report.throughput(Duration::from_secs(1)) - 50.0).abs() < 1e-9);
        // 1 caller-second == 1000 elapsed-seconds (virtual inflation).
        assert!((report.throughput(Duration::from_secs(1000)) - 50_000.0).abs() < 1e-6);
    }
}
