//! Key-popularity distributions.
//!
//! [`Zipfian`] reproduces the YCSB `ZipfianGenerator` (Gray et al.'s
//! rejection-free inverse-CDF method) including the *scrambled* variant that
//! spreads the popular items across the key space. YCSB-A/B use θ = 0.99
//! over 1 M records (§5.3: "a highly-skewed Zipfian distribution with 1M
//! objects and a parameter of 0.99").

use rand::Rng;

/// Something that picks a key index in `[0, n)`.
pub trait KeyChooser: Send {
    /// Draws the next key index.
    fn next_key(&mut self, rng: &mut dyn rand::RngCore) -> u64;
    /// Size of the key space.
    fn key_count(&self) -> u64;
}

/// Uniform key choice.
#[derive(Debug, Clone)]
pub struct Uniform {
    n: u64,
}

impl Uniform {
    /// Uniform over `[0, n)`.
    pub fn new(n: u64) -> Self {
        assert!(n > 0);
        Uniform { n }
    }
}

impl KeyChooser for Uniform {
    fn next_key(&mut self, rng: &mut dyn rand::RngCore) -> u64 {
        rng.gen_range(0..self.n)
    }
    fn key_count(&self) -> u64 {
        self.n
    }
}

/// The YCSB Zipfian generator.
///
/// Rank 0 is the most popular item; with `scrambled = true` ranks are
/// FNV-hashed onto the key space so popular keys are scattered (YCSB's
/// `ScrambledZipfianGenerator`, the default for workloads A/B).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
    scrambled: bool,
}

impl Zipfian {
    /// YCSB default: θ = 0.99, scrambled.
    pub fn ycsb(n: u64) -> Self {
        Self::new(n, 0.99, true)
    }

    /// General constructor. `theta` in (0, 1).
    pub fn new(n: u64, theta: f64, scrambled: bool) -> Self {
        assert!(n > 0 && theta > 0.0 && theta < 1.0);
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian { n, theta, alpha, zetan, eta, zeta2theta, scrambled }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact up to 10M items; the paper's workloads use 1M-2M.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draws a popularity *rank* (0 = most popular).
    pub fn next_rank(&self, rng: &mut dyn rand::RngCore) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    fn scramble(&self, rank: u64) -> u64 {
        // FNV-1a 64 over the rank bytes, folded into the key space — the
        // YCSB fnvhash64 trick.
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in rank.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h % self.n
    }

    /// Exposed for tests: the zeta(2, θ) constant.
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

impl KeyChooser for Zipfian {
    fn next_key(&mut self, rng: &mut dyn rand::RngCore) -> u64 {
        let rank = self.next_rank(rng);
        if self.scrambled {
            self.scramble(rank)
        } else {
            rank
        }
    }
    fn key_count(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn uniform_covers_space() {
        let mut u = Uniform::new(10);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let k = u.next_key(&mut rng);
            assert!(k < 10);
            seen.insert(k);
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn zipfian_ranks_in_range() {
        let z = Zipfian::new(1000, 0.99, false);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(z.next_rank(&mut rng) < 1000);
        }
    }

    #[test]
    fn zipfian_is_skewed_toward_low_ranks() {
        let z = Zipfian::new(1_000_000, 0.99, false);
        let mut rng = StdRng::seed_from_u64(3);
        let samples = 100_000;
        let mut head = 0u64;
        for _ in 0..samples {
            if z.next_rank(&mut rng) < 100 {
                head += 1;
            }
        }
        // With θ=0.99 over 1M items, the top-100 ranks draw a large share
        // (analytically ≈ 26%); uniform would give 0.01%.
        let frac = head as f64 / samples as f64;
        assert!(frac > 0.15, "top-100 fraction {frac}");
    }

    #[test]
    fn hottest_key_frequency_matches_theory() {
        let n = 10_000;
        let z = Zipfian::new(n, 0.99, false);
        let mut rng = StdRng::seed_from_u64(4);
        let samples = 200_000;
        let mut zero = 0u64;
        for _ in 0..samples {
            if z.next_rank(&mut rng) == 0 {
                zero += 1;
            }
        }
        let expect = 1.0 / Zipfian::zeta(n, 0.99);
        let got = zero as f64 / samples as f64;
        assert!((got - expect).abs() / expect < 0.1, "got {got}, expect {expect}");
    }

    #[test]
    fn scrambled_spreads_popular_keys() {
        let mut z = Zipfian::ycsb(1_000_000);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(z.next_key(&mut rng)).or_default() += 1;
        }
        // The hottest key must NOT be key 0 region necessarily; popularity
        // is still extremely skewed though.
        let max = counts.values().max().copied().unwrap();
        assert!(max > 1_000, "scrambling must preserve skew (max={max})");
        assert!(counts.keys().all(|&k| k < 1_000_000));
    }

    #[test]
    fn deterministic_with_seed() {
        let mut z1 = Zipfian::ycsb(1000);
        let mut z2 = Zipfian::ycsb(1000);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(z1.next_key(&mut r1), z2.next_key(&mut r2));
        }
    }
}
