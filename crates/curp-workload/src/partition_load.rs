//! Per-partition load accounting.
//!
//! A multi-partition run wants to know *where* its offered load landed:
//! whether a split actually balanced the key mass, which partition is the
//! hottest, and how skewed the spread is. [`PartitionLoadLedger`] is the
//! workload-side half of that: it maps key hashes onto a frozen set of
//! partition boundaries and keeps lock-free per-partition counters the
//! driver bumps as operations are issued and complete.
//!
//! The ledger is deliberately hash-agnostic — it takes `u64` key hashes
//! and range *start* boundaries, not any particular cluster-config type —
//! so the workload crate stays free of protocol dependencies. Callers
//! (the simulator, benches) feed it the range starts of their current
//! partition map.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for one partition, as captured by
/// [`PartitionLoadLedger::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionLoad {
    /// First key hash this partition owns (inclusive).
    pub start: u64,
    /// Operations issued into this partition.
    pub issued: u64,
    /// Issued operations that completed successfully.
    pub completed: u64,
    /// Issued operations that failed.
    pub failed: u64,
}

impl PartitionLoad {
    /// This partition's fraction of `total` issued operations.
    pub fn share(&self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.issued as f64 / total as f64
        }
    }
}

/// Lock-free per-partition issue/complete/fail counters over a frozen set
/// of partition boundaries.
///
/// Boundaries are the *start* hash of each partition; partition `i` owns
/// `[starts[i], starts[i+1])` and the last partition owns through
/// `u64::MAX`. The first boundary must be 0 so every hash has an owner.
#[derive(Debug)]
pub struct PartitionLoadLedger {
    starts: Vec<u64>,
    issued: Vec<AtomicU64>,
    completed: Vec<AtomicU64>,
    failed: Vec<AtomicU64>,
}

impl PartitionLoadLedger {
    /// Builds a ledger over the given partition range starts (any order,
    /// duplicates collapsed). Panics unless some boundary is 0 — otherwise
    /// low hashes would have no owning partition.
    pub fn new(mut starts: Vec<u64>) -> PartitionLoadLedger {
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.first(), Some(&0), "partition boundaries must start at hash 0");
        let n = starts.len();
        PartitionLoadLedger {
            starts,
            issued: (0..n).map(|_| AtomicU64::new(0)).collect(),
            completed: (0..n).map(|_| AtomicU64::new(0)).collect(),
            failed: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of partitions tracked.
    pub fn partitions(&self) -> usize {
        self.starts.len()
    }

    /// The partition index owning `hash`.
    pub fn partition_of(&self, hash: u64) -> usize {
        // partition_point is >= 1 because starts[0] == 0.
        self.starts.partition_point(|&s| s <= hash) - 1
    }

    /// Records one issued operation on `hash`'s partition and returns the
    /// partition index.
    pub fn issue(&self, hash: u64) -> usize {
        let p = self.partition_of(hash);
        self.issued[p].fetch_add(1, Ordering::Relaxed);
        p
    }

    /// Records the outcome of a previously issued operation.
    pub fn complete(&self, hash: u64, ok: bool) {
        let p = self.partition_of(hash);
        let lane = if ok { &self.completed } else { &self.failed };
        lane[p].fetch_add(1, Ordering::Relaxed);
    }

    /// Captures the current counters, one entry per partition in hash
    /// order.
    pub fn snapshot(&self) -> Vec<PartitionLoad> {
        (0..self.starts.len())
            .map(|i| PartitionLoad {
                start: self.starts[i],
                issued: self.issued[i].load(Ordering::Relaxed),
                completed: self.completed[i].load(Ordering::Relaxed),
                failed: self.failed[i].load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Total operations issued across every partition.
    pub fn total_issued(&self) -> u64 {
        self.issued.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Index of the partition with the most issued operations (ties go to
    /// the lowest hash range).
    pub fn hottest(&self) -> usize {
        let snap = self.snapshot();
        snap.iter()
            .enumerate()
            .max_by_key(|(i, p)| (p.issued, usize::MAX - i))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Load-imbalance factor: the hottest partition's issued count over
    /// the per-partition mean. 1.0 is perfectly even; a rebalancer wants
    /// this near 1, a split-point chooser uses it to judge its cut.
    pub fn imbalance(&self) -> f64 {
        let snap = self.snapshot();
        let total: u64 = snap.iter().map(|p| p.issued).sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / snap.len() as f64;
        let max = snap.iter().map(|p| p.issued).max().unwrap_or(0);
        max as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_partition_the_whole_hash_space() {
        let ledger = PartitionLoadLedger::new(vec![u64::MAX / 2, 0, u64::MAX / 4, u64::MAX / 2]);
        assert_eq!(ledger.partitions(), 3);
        assert_eq!(ledger.partition_of(0), 0);
        assert_eq!(ledger.partition_of(u64::MAX / 4 - 1), 0);
        assert_eq!(ledger.partition_of(u64::MAX / 4), 1);
        assert_eq!(ledger.partition_of(u64::MAX / 2), 2);
        assert_eq!(ledger.partition_of(u64::MAX), 2);
    }

    #[test]
    #[should_panic(expected = "must start at hash 0")]
    fn a_gap_below_the_first_boundary_is_rejected() {
        let _ = PartitionLoadLedger::new(vec![10, 20]);
    }

    #[test]
    fn counters_accumulate_per_partition() {
        let ledger = PartitionLoadLedger::new(vec![0, 100]);
        for h in [1, 2, 3, 150] {
            ledger.issue(h);
        }
        ledger.complete(1, true);
        ledger.complete(2, false);
        ledger.complete(150, true);
        let snap = ledger.snapshot();
        assert_eq!(snap[0].issued, 3);
        assert_eq!(snap[0].completed, 1);
        assert_eq!(snap[0].failed, 1);
        assert_eq!(snap[1], PartitionLoad { start: 100, issued: 1, completed: 1, failed: 0 });
        assert_eq!(ledger.total_issued(), 4);
        assert_eq!(ledger.hottest(), 0);
        // 3 of 4 ops on one of two partitions: imbalance 3 / 2 = 1.5.
        assert!((ledger.imbalance() - 1.5).abs() < 1e-9);
        assert!((snap[0].share(4) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn an_idle_ledger_reports_even_balance() {
        let ledger = PartitionLoadLedger::new(vec![0, 7]);
        assert!((ledger.imbalance() - 1.0).abs() < 1e-9);
        assert_eq!(ledger.snapshot()[1].share(0), 0.0);
    }
}
