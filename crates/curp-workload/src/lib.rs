//! Workload generation and measurement for the CURP benchmarks.
//!
//! * [`zipfian`] — the YCSB Zipfian key-popularity distribution (θ = 0.99
//!   over 1 M keys is the default for YCSB-A/B, §5.3) plus a uniform
//!   generator;
//! * [`ycsb`] — the YCSB-A (50/50 read/update) and YCSB-B (95/5) operation
//!   mixes over `user<N>` keys with 100-byte values, as used in Figure 7;
//! * [`latency`] — latency recording with percentile and CCDF/CDF series
//!   extraction matching the axes of Figures 5, 7, 8 and 13.

pub mod latency;
pub mod ycsb;
pub mod zipfian;

pub use latency::LatencyRecorder;
pub use ycsb::{Workload, WorkloadOp};
pub use zipfian::{KeyChooser, Uniform, Zipfian};
