//! Workload generation and measurement for the CURP benchmarks.
//!
//! * [`zipfian`] — the YCSB Zipfian key-popularity distribution (θ = 0.99
//!   over 1 M keys is the default for YCSB-A/B, §5.3) plus a uniform
//!   generator;
//! * [`ycsb`] — the YCSB-A (50/50 read/update) and YCSB-B (95/5) operation
//!   mixes over `user<N>` keys with 100-byte values, as used in Figure 7;
//! * [`latency`] — latency recording with percentile and CCDF/CDF series
//!   extraction matching the axes of Figures 5, 7, 8 and 13;
//! * [`open_loop`] — a fixed-arrival-rate (open-loop) driver that issues
//!   operations on a schedule independent of completions and measures
//!   latency from scheduled arrival, for saturation/tail studies;
//! * [`partition_load`] — per-partition issue/complete accounting over a
//!   set of partition boundaries, for judging split balance and finding
//!   the hottest partition.

pub mod latency;
pub mod open_loop;
pub mod partition_load;
pub mod ycsb;
pub mod zipfian;

pub use latency::{LatencyRecorder, LatencySummary};
pub use open_loop::{run_open_loop, OpenLoopConfig, OpenLoopReport};
pub use partition_load::{PartitionLoad, PartitionLoadLedger};
pub use ycsb::{Workload, WorkloadOp};
pub use zipfian::{KeyChooser, Uniform, Zipfian};
