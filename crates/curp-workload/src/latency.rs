//! Latency recording and distribution extraction.
//!
//! The paper's latency figures plot distributions, not means: Figure 5/7 use
//! complementary CDFs on log-log axes ("a point (x,y) indicates that y of
//! the measured writes took at least x µs"), Figure 8 a plain CDF, Figure 10
//! medians. [`LatencyRecorder`] collects samples (in nanoseconds of
//! *simulated* time when run under the virtual clock) and produces exactly
//! those series.

/// Collects latency samples and answers distribution queries.
#[derive(Debug, Default, Clone)]
pub struct LatencyRecorder {
    samples_ns: Vec<u64>,
    sorted: bool,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample, in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.samples_ns.push(ns);
        self.sorted = false;
    }

    /// Adds one sample given as a duration.
    pub fn record(&mut self, d: std::time::Duration) {
        self.record_ns(d.as_nanos() as u64);
    }

    /// Merges another recorder's samples (per-client recorders → global).
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_ns.extend_from_slice(&other.samples_ns);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples_ns.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `p`-quantile (0.0 ..= 1.0), in nanoseconds.
    pub fn quantile_ns(&mut self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p) && !self.is_empty());
        self.ensure_sorted();
        let idx = ((self.samples_ns.len() - 1) as f64 * p).round() as usize;
        self.samples_ns[idx]
    }

    /// Median in microseconds.
    pub fn median_us(&mut self) -> f64 {
        self.quantile_ns(0.5) as f64 / 1_000.0
    }

    /// Mean in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let sum: u128 = self.samples_ns.iter().map(|&x| x as u128).sum();
        (sum as f64 / self.samples_ns.len() as f64) / 1_000.0
    }

    /// Complementary CDF series (Figures 5/7): pairs `(latency_us,
    /// fraction_at_least)`, log-spaced down to `1/len`.
    ///
    /// Returns one point per distinct fraction decade step: the fractions
    /// 1, 0.5, 0.2, 0.1, 0.05, ..., 1/len.
    pub fn ccdf_us(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.samples_ns.len();
        if n == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut frac = 1.0f64;
        while frac >= 1.0 / n as f64 {
            // Fraction of samples >= x is `frac` when x is the value at
            // index n*(1-frac).
            let idx = ((n as f64) * (1.0 - frac)).floor() as usize;
            let idx = idx.min(n - 1);
            out.push((self.samples_ns[idx] as f64 / 1_000.0, frac));
            frac /= 10f64.powf(0.25); // 4 points per decade
        }
        out
    }

    /// Returns a copy with every sample divided by `divisor` — used to map
    /// virtual-clock samples (recorded in inflated tokio time, e.g. 1
    /// virtual ns = 1 tokio ms) back to protocol-scale nanoseconds.
    pub fn scaled_down(&self, divisor: u64) -> LatencyRecorder {
        assert!(divisor > 0);
        LatencyRecorder {
            samples_ns: self.samples_ns.iter().map(|&s| s / divisor).collect(),
            sorted: self.sorted,
        }
    }

    /// The percentile capture used by throughput/tail reports: median, tail
    /// percentiles, mean and max, in microseconds.
    pub fn summary(&mut self) -> LatencySummary {
        assert!(!self.is_empty(), "no samples recorded");
        LatencySummary {
            count: self.len(),
            mean_us: self.mean_us(),
            p50_us: self.quantile_ns(0.50) as f64 / 1_000.0,
            p90_us: self.quantile_ns(0.90) as f64 / 1_000.0,
            p99_us: self.quantile_ns(0.99) as f64 / 1_000.0,
            p999_us: self.quantile_ns(0.999) as f64 / 1_000.0,
            max_us: self.quantile_ns(1.0) as f64 / 1_000.0,
        }
    }

    /// CDF series (Figure 8): pairs `(latency_us, fraction_at_most)` at the
    /// given resolution (number of points).
    pub fn cdf_us(&mut self, points: usize) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.samples_ns.len();
        if n == 0 {
            return Vec::new();
        }
        (0..=points)
            .map(|i| {
                let p = i as f64 / points as f64;
                let idx = (((n - 1) as f64) * p).round() as usize;
                (self.samples_ns[idx] as f64 / 1_000.0, p)
            })
            .collect()
    }
}

/// Latency percentiles of one run (see [`LatencyRecorder::summary`]).
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Mean, µs.
    pub mean_us: f64,
    /// Median, µs.
    pub p50_us: f64,
    /// 90th percentile, µs.
    pub p90_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// 99.9th percentile, µs.
    pub p999_us: f64,
    /// Maximum, µs.
    pub max_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn filled(values_us: &[u64]) -> LatencyRecorder {
        let mut r = LatencyRecorder::new();
        for &v in values_us {
            r.record(Duration::from_micros(v));
        }
        r
    }

    #[test]
    fn quantiles() {
        let mut r = filled(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(r.quantile_ns(0.0), 1_000);
        assert_eq!(r.quantile_ns(1.0), 10_000);
        assert!((r.median_us() - 5.0).abs() <= 1.0);
    }

    #[test]
    fn mean() {
        let r = filled(&[10, 20, 30]);
        assert!((r.mean_us() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn ccdf_starts_at_one_and_decreases() {
        let mut r = filled(&(1..=1000).collect::<Vec<_>>());
        let series = r.ccdf_us();
        assert_eq!(series[0].1, 1.0);
        for w in series.windows(2) {
            assert!(w[0].1 > w[1].1, "fractions must decrease");
            assert!(w[0].0 <= w[1].0, "latencies must not decrease");
        }
        // Smallest fraction reaches ~1/n.
        assert!(series.last().unwrap().1 <= 0.002);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut r = filled(&[5, 1, 9, 3, 7]);
        let series = r.cdf_us(10);
        for w in series.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = filled(&[1, 2]);
        let b = filled(&[3, 4]);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.quantile_ns(1.0), 4_000);
    }

    #[test]
    fn scaled_down_divides_samples() {
        let r = filled(&[1000, 2000]); // 1 ms, 2 ms in ns
        let mut s = r.scaled_down(1000);
        assert_eq!(s.quantile_ns(0.0), 1_000);
        assert_eq!(s.quantile_ns(1.0), 2_000);
    }

    #[test]
    fn summary_captures_percentiles() {
        let mut r = filled(&(1..=1000).collect::<Vec<_>>());
        let s = r.summary();
        assert_eq!(s.count, 1000);
        assert!((s.p50_us - 500.0).abs() <= 1.0);
        assert!((s.p99_us - 990.0).abs() <= 2.0);
        assert!((s.max_us - 1000.0).abs() < 1e-9);
        assert!(s.p50_us <= s.p90_us && s.p90_us <= s.p99_us && s.p99_us <= s.p999_us);
    }
}
