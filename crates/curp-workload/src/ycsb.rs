//! YCSB-style operation mixes (§5.3, Figure 7).

use bytes::Bytes;
use rand::Rng;

use crate::zipfian::{KeyChooser, Uniform, Zipfian};

/// One generated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Read `key`.
    Read {
        /// Primary key.
        key: Bytes,
    },
    /// Write `value` to `key`.
    Update {
        /// Primary key.
        key: Bytes,
        /// Value payload.
        value: Bytes,
    },
}

impl WorkloadOp {
    /// The operation's key.
    pub fn key(&self) -> &Bytes {
        match self {
            WorkloadOp::Read { key } | WorkloadOp::Update { key, .. } => key,
        }
    }

    /// Whether this is a read.
    pub fn is_read(&self) -> bool {
        matches!(self, WorkloadOp::Read { .. })
    }
}

/// A YCSB-like workload: a key chooser plus a read fraction and value size.
pub struct Workload {
    chooser: Box<dyn KeyChooser>,
    read_fraction: f64,
    value_size: usize,
}

impl Workload {
    /// YCSB-A: 50% reads / 50% updates, Zipfian(0.99) over `records` keys.
    pub fn ycsb_a(records: u64) -> Self {
        Workload { chooser: Box::new(Zipfian::ycsb(records)), read_fraction: 0.5, value_size: 100 }
    }

    /// YCSB-B: 95% reads / 5% updates, Zipfian(0.99) over `records` keys.
    pub fn ycsb_b(records: u64) -> Self {
        Workload { chooser: Box::new(Zipfian::ycsb(records)), read_fraction: 0.95, value_size: 100 }
    }

    /// Write-only uniform workload with 100 B values (Figures 5/6/12: "100B
    /// random RAMCloud writes").
    pub fn uniform_writes(records: u64) -> Self {
        Workload { chooser: Box::new(Uniform::new(records)), read_fraction: 0.0, value_size: 100 }
    }

    /// Custom mix.
    pub fn custom(chooser: Box<dyn KeyChooser>, read_fraction: f64, value_size: usize) -> Self {
        assert!((0.0..=1.0).contains(&read_fraction));
        Workload { chooser, read_fraction, value_size }
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> u64 {
        self.chooser.key_count()
    }

    /// YCSB key naming: `user<N>`.
    pub fn key_bytes(index: u64) -> Bytes {
        Bytes::from(format!("user{index}"))
    }

    /// Draws the next operation.
    pub fn next_op(&mut self, rng: &mut dyn rand::RngCore) -> WorkloadOp {
        let key = Self::key_bytes(self.chooser.next_key(rng));
        if self.read_fraction > 0.0 && rng.gen_bool(self.read_fraction) {
            WorkloadOp::Read { key }
        } else {
            let mut value = vec![0u8; self.value_size];
            rng.fill(&mut value[..]);
            WorkloadOp::Update { key, value: Bytes::from(value) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ycsb_a_mix_is_half_reads() {
        let mut w = Workload::ycsb_a(1000);
        let mut rng = StdRng::seed_from_u64(1);
        let reads = (0..10_000).filter(|_| w.next_op(&mut rng).is_read()).count();
        assert!((4_500..5_500).contains(&reads), "reads={reads}");
    }

    #[test]
    fn ycsb_b_mix_is_mostly_reads() {
        let mut w = Workload::ycsb_b(1000);
        let mut rng = StdRng::seed_from_u64(2);
        let reads = (0..10_000).filter(|_| w.next_op(&mut rng).is_read()).count();
        assert!((9_300..9_700).contains(&reads), "reads={reads}");
    }

    #[test]
    fn uniform_writes_are_all_updates_with_100b_values() {
        let mut w = Workload::uniform_writes(100);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            match w.next_op(&mut rng) {
                WorkloadOp::Update { value, .. } => assert_eq!(value.len(), 100),
                WorkloadOp::Read { .. } => panic!("write-only workload produced a read"),
            }
        }
    }

    #[test]
    fn keys_follow_ycsb_naming() {
        assert_eq!(Workload::key_bytes(42), Bytes::from_static(b"user42"));
    }
}
