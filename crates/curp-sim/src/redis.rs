//! The Redis-class simulated deployment (Figures 8, 9, 10 and 13).
//!
//! §5.4 of the paper: Redis achieves durability by logging client requests
//! to an append-only file and fsyncing before responding; CURP hides that
//! fsync by recording on witnesses and writing the log in the background.
//! The model prices:
//!
//! * kernel TCP one-way latency with a heavy tail (latency "degrades
//!   rapidly above the 80th percentile", §5.4),
//! * ~2.5 µs of syscall cost per message at the client (the measured cost
//!   of the extra witness send/recv),
//! * an fsync of 50–100 µs on the NVMe append-only file, charged once per
//!   sync *batch* — Redis batches fsyncs across its event loop (§C.2),
//!   which the master's single-outstanding-sync machinery reproduces.
//!
//! The append-only file is modeled as a *local* backup (zero network
//! latency) whose sync handler sleeps for the fsync duration. "Original
//! Redis (durable)" is the master in `sync_every_op` mode against that
//! backup; "CURP (k witnesses)" keeps the backup asynchronous and adds
//! witness servers.

use std::sync::Arc;
use std::time::Duration;

use curp_core::client::{ClientConfig, CurpClient};
use curp_core::coordinator::{Coordinator, CoordinatorHandler};
use curp_core::master::MasterConfig;
use curp_core::server::{CurpServer, ServerHandler};
use curp_proto::cluster::HashRange;
use curp_proto::message::{Request, Response};
use curp_proto::op::Op;
use curp_proto::types::ServerId;
use curp_transport::latency::{Fixed, NetProfile};
use curp_transport::mem::{MemNetwork, ServerSpec};
use curp_transport::rpc::{BoxFuture, RpcHandler};
use curp_witness::cache::CacheConfig;
use curp_workload::LatencyRecorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::RunResult;
use crate::time::{to_virtual_ns, vns, vus, MODEL_SCALE};

/// Which Redis configuration of Figure 8 to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedisMode {
    /// Plain cache: no fsync, no witnesses — fast and volatile.
    NonDurable,
    /// `appendfsync always`: fsync before every response (batched across
    /// the event loop under load, §C.2).
    Durable,
    /// CURP with `witnesses` witness servers hiding the fsync.
    Curp {
        /// Number of witnesses (1 or 2 in the paper).
        witnesses: usize,
    },
}

/// Model constants (virtual nanoseconds).
#[derive(Debug, Clone)]
pub struct RedisParams {
    /// Client syscall cost per message (~2.5 µs, §5.4).
    pub client_syscall_ns: u64,
    /// Server event-loop cost per message.
    pub server_dispatch_ns: u64,
    /// Command execution cost.
    pub exec_ns: u64,
    /// fsync on the NVMe AOF (50–100 µs, §5.4).
    pub fsync_ns: u64,
    /// Witness-server dispatch cost per message.
    pub witness_dispatch_ns: u64,
    /// Background AOF flush interval for the CURP modes.
    pub sync_interval_ns: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RedisParams {
    fn default() -> Self {
        RedisParams {
            client_syscall_ns: 2_500,
            server_dispatch_ns: 1_200,
            exec_ns: 1_500,
            fsync_ns: 60_000,
            witness_dispatch_ns: 1_200,
            sync_interval_ns: 200_000, // 200 µs background AOF flush
            seed: 0x5EED_CAFE,
        }
    }
}

const COORD: ServerId = ServerId(9_999);
const MASTER: ServerId = ServerId(1);
const AOF: ServerId = ServerId(2);

/// Wraps the AOF backup so every sync batch pays one fsync.
struct AofHandler {
    inner: ServerHandler,
    fsync: Duration,
}

impl RpcHandler for AofHandler {
    fn handle(&self, from: ServerId, req: Request) -> BoxFuture<'static, Response> {
        let fut = self.inner.handle(from, req.clone());
        let fsync = self.fsync;
        let is_sync = matches!(req, Request::BackupSync { .. });
        Box::pin(async move {
            if is_sync {
                // One fsync per replicated batch, regardless of batch size —
                // this is what amortizes the cost under load (§C.2).
                tokio::time::sleep(fsync).await;
            }
            fut.await
        })
    }
}

/// A simulated single-node Redis deployment (plus witnesses under CURP).
pub struct RedisSim {
    /// The network (fault injection in tests).
    pub net: MemNetwork,
    mode: RedisMode,
    params: RedisParams,
}

impl RedisSim {
    /// Builds the deployment.
    pub async fn build(mode: RedisMode, params: RedisParams) -> RedisSim {
        let net = MemNetwork::new(params.seed);
        net.set_default_latency(Arc::new(NetProfile::TcpDatacenter.model().scaled(MODEL_SCALE)));
        net.set_rpc_timeout(vus(50_000));

        let witnesses_n = match mode {
            RedisMode::Curp { witnesses } => witnesses,
            _ => 0,
        };
        let durable = mode != RedisMode::NonDurable;

        let master_cfg = MasterConfig {
            batch_size: 64,
            sync_interval: vns(params.sync_interval_ns),
            exec_cost: vns(params.exec_ns),
            hotkey_sync: false,
            hotkey_window: 64,
            sync_retry_limit: 10,
            sync_retry_backoff: vus(100),
            sync_every_op: mode == RedisMode::Durable,
            // One event-loop iteration's worth of request gathering before
            // the shared fsync (§C.2), amortizing it across ready clients.
            sync_coalesce: if mode == RedisMode::Durable { vus(25) } else { Duration::ZERO },
            sync_workers: 1, // Redis is single-threaded
            sync_group_commit: true,
            // Redis is single-threaded: one shard reproduces its serialized
            // command loop faithfully in the model.
            store: curp_storage::StoreConfig::memory(1),
        };
        let net_for_factory = net.clone();
        let coord = Coordinator::new(
            Box::new(move |id| net_for_factory.client(id)),
            master_cfg,
            u64::MAX / 4,
        );
        net.add_simple_server(COORD, Arc::new(CoordinatorHandler(Arc::clone(&coord))));

        // Redis server.
        let master_srv = CurpServer::new(MASTER, CacheConfig::default());
        net.add_server(
            MASTER,
            Arc::new(ServerHandler(Arc::clone(&master_srv))),
            ServerSpec { dispatch_cost: vns(params.server_dispatch_ns) },
        );
        coord.register_server(Arc::clone(&master_srv));

        // The AOF "backup": local (no network) and priced per fsync. Present
        // in every durable mode; the non-durable mode runs unreplicated.
        let mut backups = Vec::new();
        if durable {
            let aof_srv = CurpServer::new(AOF, CacheConfig::default());
            net.add_server(
                AOF,
                Arc::new(AofHandler {
                    inner: ServerHandler(Arc::clone(&aof_srv)),
                    fsync: vns(params.fsync_ns),
                }),
                ServerSpec { dispatch_cost: Duration::ZERO },
            );
            coord.register_server(Arc::clone(&aof_srv));
            // Local disk: zero network latency both ways.
            net.set_link_latency(MASTER, AOF, Arc::new(Fixed(Duration::ZERO)));
            net.set_link_latency(AOF, MASTER, Arc::new(Fixed(Duration::ZERO)));
            backups.push(AOF);
        }

        // Witness servers (separate Redis servers, §5.4).
        let mut witness_ids = Vec::new();
        for i in 0..witnesses_n {
            let id = ServerId(10 + i as u64);
            let w = CurpServer::new(id, CacheConfig::default());
            net.add_server(
                id,
                Arc::new(ServerHandler(Arc::clone(&w))),
                ServerSpec { dispatch_cost: vns(params.witness_dispatch_ns) },
            );
            coord.register_server(Arc::clone(&w));
            witness_ids.push(id);
        }

        coord
            .create_partition(MASTER, backups, witness_ids, HashRange::FULL)
            .await
            .expect("create redis partition");
        RedisSim { net, mode, params }
    }

    /// Creates a client with the TCP syscall cost model.
    pub async fn client(&self, index: usize) -> Arc<CurpClient> {
        let id = ServerId(100 + index as u64);
        self.net.add_server(
            id,
            Arc::new(|_f: ServerId, _r: Request| async move {
                Response::Retry { reason: "client".into() }
            }),
            ServerSpec { dispatch_cost: vns(self.params.client_syscall_ns) },
        );
        let cfg = ClientConfig {
            record_witnesses: matches!(self.mode, RedisMode::Curp { .. }),
            max_retries: 50,
            retry_backoff: vus(500),
            retry_backoff_max: vus(8_000),
        };
        Arc::new(CurpClient::connect(self.net.client(id), COORD, cfg).await.expect("connect"))
    }

    /// Sequential SET latency from one client (Figure 8): `samples` writes of
    /// `value_size` bytes to random keys drawn from `keys`.
    pub async fn measure_set_latency(
        &self,
        samples: usize,
        keys: u64,
        key_len: usize,
        value_size: usize,
    ) -> LatencyRecorder {
        let client = self.client(0).await;
        let mut rng = StdRng::seed_from_u64(self.params.seed ^ 0xABCD);
        let mut rec = LatencyRecorder::new();
        for _ in 0..samples {
            let op = random_op(&mut rng, RedisCommand::Set, keys, key_len, value_size);
            let t0 = tokio::time::Instant::now();
            client.update(op).await.expect("set failed");
            rec.record_ns(to_virtual_ns(t0.elapsed()));
        }
        rec
    }

    /// Sequential latency for an arbitrary Redis command (Figure 10).
    pub async fn measure_command_latency(
        &self,
        command: RedisCommand,
        samples: usize,
        keys: u64,
        key_len: usize,
        value_size: usize,
    ) -> LatencyRecorder {
        let client = self.client(0).await;
        let mut rng = StdRng::seed_from_u64(self.params.seed ^ 0x1234);
        let mut rec = LatencyRecorder::new();
        for _ in 0..samples {
            let op = random_op(&mut rng, command, keys, key_len, value_size);
            let t0 = tokio::time::Instant::now();
            client.update(op).await.expect("command failed");
            rec.record_ns(to_virtual_ns(t0.elapsed()));
        }
        rec
    }

    /// Closed-loop SET throughput with `clients` clients (Figures 9/13).
    pub async fn run_closed_loop(&self, clients: usize, duration: Duration) -> RunResult {
        let mut handles = Vec::new();
        for c in 0..clients {
            let client = self.client(c).await;
            let seed = self.params.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            handles.push(tokio::spawn(async move {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut rec = LatencyRecorder::new();
                let deadline = tokio::time::Instant::now() + duration;
                let mut ops = 0u64;
                while tokio::time::Instant::now() < deadline {
                    let op = random_op(&mut rng, RedisCommand::Set, 2_000_000, 30, 100);
                    let t0 = tokio::time::Instant::now();
                    client.update(op).await.expect("set failed");
                    rec.record_ns(to_virtual_ns(t0.elapsed()));
                    ops += 1;
                }
                (rec, ops)
            }));
        }
        let mut writes = LatencyRecorder::new();
        let mut total = 0;
        for h in handles {
            let (rec, ops) = h.await.expect("client task");
            writes.merge(&rec);
            total += ops;
        }
        let secs = to_virtual_ns(duration) as f64 / 1e9;
        RunResult {
            writes,
            reads: LatencyRecorder::new(),
            throughput_ops_per_sec: total as f64 / secs,
            ops: total,
        }
    }
}

/// The Redis commands of Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedisCommand {
    /// `SET key value` — 100 B string values in the paper.
    Set,
    /// `HMSET key field value` — one 100 B member, 1 B field key.
    Hmset,
    /// `INCR key`.
    Incr,
}

fn random_op(
    rng: &mut StdRng,
    command: RedisCommand,
    keys: u64,
    key_len: usize,
    value_size: usize,
) -> Op {
    // "a random 30B key over 2M unique keys" (Figure 10): random index,
    // zero-padded into a fixed-width key.
    let idx = rng.gen_range(0..keys);
    let key = bytes::Bytes::from(format!("{idx:0width$}", width = key_len));
    match command {
        RedisCommand::Set => {
            let mut value = vec![0u8; value_size];
            rng.fill(&mut value[..]);
            Op::Put { key, value: bytes::Bytes::from(value) }
        }
        RedisCommand::Hmset => {
            let mut value = vec![0u8; value_size];
            rng.fill(&mut value[..]);
            Op::HSet {
                key,
                field: bytes::Bytes::from_static(b"f"),
                value: bytes::Bytes::from(value),
            }
        }
        RedisCommand::Incr => Op::Incr { key, delta: 1 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::run_sim;

    fn median_set_us(mode: RedisMode) -> f64 {
        run_sim(async move {
            let sim = RedisSim::build(mode, RedisParams::default()).await;
            let mut rec = sim.measure_set_latency(200, 100_000, 30, 100).await;
            rec.median_us()
        })
    }

    #[test]
    fn durable_redis_pays_the_fsync() {
        let nd = median_set_us(RedisMode::NonDurable);
        let d = median_set_us(RedisMode::Durable);
        // Figure 8: non-durable ~25 µs; durable dominated by the ~85 µs fsync.
        assert!((15.0..40.0).contains(&nd), "non-durable median {nd:.1}");
        assert!(d > nd + 60.0, "durable {d:.1} vs non-durable {nd:.1}");
    }

    #[test]
    fn curp_hides_the_fsync() {
        let nd = median_set_us(RedisMode::NonDurable);
        let c1 = median_set_us(RedisMode::Curp { witnesses: 1 });
        // Figure 8: +~3 µs (12%) median for one witness — durability for ~free.
        let overhead = c1 - nd;
        assert!((0.0..12.0).contains(&overhead), "curp-1w {c1:.1} vs non-durable {nd:.1}");
    }

    #[test]
    fn second_witness_costs_more_via_tails() {
        let c1 = median_set_us(RedisMode::Curp { witnesses: 1 });
        let c2 = median_set_us(RedisMode::Curp { witnesses: 2 });
        // Figure 8/10: waiting on three heavy-tailed RPCs raises the median.
        assert!(c2 > c1, "2 witnesses {c2:.1} vs 1 witness {c1:.1}");
    }

    #[test]
    fn durable_throughput_approaches_nondurable_under_load() {
        // Figure 9: the event loop amortizes one fsync across all ready
        // clients, so with enough clients the durable server becomes
        // dispatch-bound like the non-durable one ("the original synchronous
        // form of Redis can offer throughput approaching non-durable Redis").
        let tp = |mode, clients| {
            run_sim(async move {
                let sim = RedisSim::build(mode, RedisParams::default()).await;
                let r = sim.run_closed_loop(clients, vus(40_000)).await;
                r.throughput_ops_per_sec
            })
        };
        let nd = tp(RedisMode::NonDurable, 50);
        let d_few = tp(RedisMode::Durable, 4);
        let d_many = tp(RedisMode::Durable, 50);
        assert!(d_many > nd * 0.5, "durable@50 {d_many:.0} should approach non-durable {nd:.0}");
        // And the gap must be wide at low client counts (the fsync shows).
        assert!(
            d_few < nd * 0.35,
            "durable@4 {d_few:.0} should lag far behind non-durable {nd:.0}"
        );
    }
}

#[cfg(test)]
mod batching {
    use super::*;
    use crate::time::run_sim;

    #[test]
    fn event_loop_amortizes_fsyncs_across_clients() {
        // §C.2: "for each event-loop cycle, Redis ... executes all requests
        // ... after the iteration, Redis fsyncs once". Under 20 concurrent
        // clients the average ops-per-fsync must be well above 1.
        run_sim(async move {
            let sim = RedisSim::build(RedisMode::Durable, RedisParams::default()).await;
            let r = sim.run_closed_loop(20, vus(40_000)).await;
            let aof = sim.net.stats(AOF).unwrap();
            let syncs = aof.requests_in.load(std::sync::atomic::Ordering::Relaxed);
            let per = r.ops as f64 / syncs as f64;
            assert!(per > 5.0, "only {per:.1} ops per fsync ({} ops, {syncs} fsyncs)", r.ops);
        });
    }
}
