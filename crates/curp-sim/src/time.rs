//! Scaled virtual time.
//!
//! Convention: **1 virtual nanosecond = 1 tokio millisecond**. Tokio's timer
//! has 1 ms resolution (sleeps round *up* to the next millisecond even under
//! a paused clock), so microsecond-scale protocol simulation needs this
//! inflation to keep sub-microsecond costs (e.g. the paper's 0.4 µs CURP
//! latency overhead) representable. Under `start_paused` the inflated
//! durations cost no wall-clock time: the runtime jumps between timer
//! deadlines.

use std::future::Future;
use std::time::Duration;

/// Converts virtual nanoseconds to a tokio duration.
pub fn vns(ns: u64) -> Duration {
    Duration::from_millis(ns)
}

/// Converts virtual microseconds to a tokio duration.
pub fn vus(us: u64) -> Duration {
    Duration::from_millis(us * 1_000)
}

/// Converts an elapsed tokio duration back to virtual microseconds.
pub fn to_virtual_us(d: Duration) -> f64 {
    d.as_millis() as f64 / 1_000.0
}

/// Converts an elapsed tokio duration back to virtual nanoseconds.
pub fn to_virtual_ns(d: Duration) -> u64 {
    d.as_millis() as u64
}

/// Scale factor applied to physical-time latency models
/// ([`curp_transport::latency::TailMix::scaled`]): ns → ms is ×1 000 000.
pub const MODEL_SCALE: u32 = 1_000_000;

/// Runs a simulation future on a fresh single-threaded runtime with the
/// clock paused from the start. Single-threaded + paused clock makes runs
/// reproducible given fixed RNG seeds.
pub fn run_sim<F: Future>(fut: F) -> F::Output {
    let rt = tokio::runtime::Builder::new_current_thread()
        .enable_time()
        .start_paused(true)
        .build()
        .expect("build simulation runtime");
    rt.block_on(fut)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(vns(2_400), Duration::from_millis(2_400));
        assert_eq!(vus(3), vns(3_000));
        assert_eq!(to_virtual_us(vus(7)), 7.0);
        assert_eq!(to_virtual_ns(vns(123)), 123);
    }

    #[test]
    fn run_sim_advances_virtual_time_instantly() {
        let wall = std::time::Instant::now();
        run_sim(async {
            // One virtual second = 1e6 tokio seconds; finishes instantly.
            tokio::time::sleep(vus(1_000_000)).await;
        });
        assert!(wall.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn sub_microsecond_costs_are_representable() {
        // 0.4 virtual µs must not vanish to zero.
        let d = vns(400);
        assert!(d > Duration::ZERO);
        run_sim(async move {
            let t0 = tokio::time::Instant::now();
            tokio::time::sleep(d).await;
            assert_eq!(to_virtual_ns(t0.elapsed()), 400);
        });
    }
}
