//! The chaos fleet: seed-driven end-to-end fault runs with per-run
//! linearizability checking.
//!
//! One fleet run ([`run_chaos_seed`]) is a pure function of its seed:
//!
//! 1. draw a topology (1–2 partitions, f = 3, witnesses co-hosted or
//!    separate) and a sequence of 1–3 composed [`nemesis`](crate::nemesis)
//!    episodes from a seeded RNG;
//! 2. build the cluster — durable (real on-disk AOFs, journals, fences)
//!    iff any drawn nemesis cold-restarts servers;
//! 3. run open-loop pipelined load *concurrently* with the nemesis
//!    sequence, recording every operation's invoke/response window and
//!    observed result in a history (failed mutations become *pending* —
//!    their outcome is unknown and the checker may keep or drop them);
//! 4. heal everything, anchor the final state with a completed read per
//!    key and one more increment per counter (exactly-once made visible);
//! 5. run the Wing–Gong checker; any violation is reported as a minimal
//!    per-key counterexample window plus a one-line repro
//!    (`CHAOS_SEED=<n> cargo test -q --test chaos`).
//!
//! Determinism: the cluster's latency draws, the transport's fault rolls,
//! the load arrivals and the nemesis schedule all derive from the seed
//! through the paused virtual clock, so the run — and the
//! [`ScheduleLog::hash`] fingerprint of everything the nemeses did —
//! replays identically from the same seed.

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use curp_core::client::{PipelineConfig, PipelinedClient};
use curp_proto::op::{Op, OpResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::{Mode, RamcloudParams, SimCluster};
use crate::lincheck::{failing_keys_detailed, HistOp, HistoryEvent};
use crate::nemesis::{draw_sequence, ScheduleLog, Topology};
use crate::time::{run_sim, vns};
use crate::TempDir;

/// Keys carrying opaque values (Put/Get traffic).
const VALUE_KEYS: &[&str] = &["alpha", "beta", "gamma"];
/// Keys carrying counters (Incr traffic) — kept disjoint from
/// [`VALUE_KEYS`] so the workload never trips `WrongType`.
const COUNTER_KEYS: &[&str] = &["c0", "c1"];

/// Parameters of one chaos run. [`ChaosConfig::new`] gives the fleet
/// defaults; only tests that need a different load shape override fields.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The seed everything derives from.
    pub seed: u64,
    /// Open-loop arrivals to drive while the nemeses run.
    pub ops: u64,
    /// Virtual nanoseconds between arrivals.
    pub arrival_ns: u64,
}

impl ChaosConfig {
    /// Fleet defaults: 48 arrivals, one every 40 µs — a ~2 ms load span
    /// that overlaps a multi-episode nemesis sequence.
    pub fn new(seed: u64) -> ChaosConfig {
        ChaosConfig { seed, ops: 48, arrival_ns: 40_000 }
    }
}

/// What one chaos run did and found.
#[derive(Debug)]
pub struct ChaosReport {
    /// The seed this run derived from.
    pub seed: u64,
    /// Names of the drawn nemeses, in injection order.
    pub nemeses: Vec<&'static str>,
    /// Whether the cluster was built durable (some nemesis needed disk).
    pub durable: bool,
    /// Drawn partition count.
    pub partitions: usize,
    /// Drawn witness placement.
    pub separate_witnesses: bool,
    /// FNV-1a fingerprint of the nemesis schedule — the replay oracle.
    pub schedule_hash: u64,
    /// The schedule, one formatted line per recorded state change.
    pub schedule: Vec<String>,
    /// History events with a known outcome.
    pub completed_ops: usize,
    /// History events whose outcome is unknown (the checker may drop them).
    pub pending_ops: usize,
    /// Linearizability violations: one formatted minimal counterexample
    /// window per failing key. Empty on a clean run.
    pub violations: Vec<String>,
    /// The full recorded history (completed and pending events), for
    /// deeper triage than the minimal windows in `violations`.
    pub history: Vec<HistoryEvent>,
    /// Harness-level failures (a nemesis that could not complete, an
    /// anchor read that kept failing after healing). Empty on a clean run.
    pub errors: Vec<String>,
}

impl ChaosReport {
    /// Whether the run was clean: no violations, no harness errors.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty() && self.errors.is_empty()
    }

    /// The one-line repro for this seed.
    pub fn repro_line(&self) -> String {
        repro_line(self.seed)
    }

    /// Everything a failing seed's triage needs, as one block of text.
    pub fn render_failure(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("chaos seed {} failed — repro: {}\n", self.seed, self.repro_line()));
        out.push_str(&format!(
            "topology: {} partition(s), f=3, witnesses {}; cluster {}\n",
            self.partitions,
            if self.separate_witnesses { "separate" } else { "co-hosted" },
            if self.durable { "durable" } else { "in-memory" },
        ));
        out.push_str(&format!(
            "nemeses: [{}], schedule hash {:#018x}\n",
            self.nemeses.join(", "),
            self.schedule_hash
        ));
        for line in &self.schedule {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        for err in &self.errors {
            out.push_str(&format!("harness error: {err}\n"));
        }
        for v in &self.violations {
            out.push_str(v);
            out.push('\n');
        }
        out
    }
}

/// The one-line repro for a chaos seed.
pub fn repro_line(seed: u64) -> String {
    format!("CHAOS_SEED={seed} cargo test -q --test chaos")
}

/// Runs one chaos seed with the fleet defaults.
pub fn run_chaos_seed(seed: u64) -> ChaosReport {
    run_chaos(ChaosConfig::new(seed))
}

/// Runs one configured chaos run inside its own paused-clock simulation.
pub fn run_chaos(cfg: ChaosConfig) -> ChaosReport {
    run_sim(async move { chaos_run(cfg).await })
}

async fn chaos_run(cfg: ChaosConfig) -> ChaosReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Draw the world: topology first (the nemesis draws size their victim
    // indices from it), then the episode sequence.
    let partitions = rng.gen_range(1..=2usize);
    let separate_witnesses = rng.gen_bool(0.5);
    let topo = Topology::of(partitions, 3, separate_witnesses);
    let nemeses = draw_sequence(&mut rng, &topo);
    let names: Vec<&'static str> = nemeses.iter().map(|n| n.name()).collect();
    let durable = nemeses.iter().any(|n| n.needs_disk());

    let mut params = RamcloudParams::new(3);
    params.seed = cfg.seed;
    params.batch_size = 5; // frequent syncs: AOFs and journals both carry state
    params.sync_interval_ns = 30_000;
    params.separate_witnesses = separate_witnesses;
    // Two spares: a successful SplitMigration consumes one permanently
    // (the spare becomes a master), and a later MasterChurn still needs a
    // recovery target. Churn itself is spare-neutral — the deposed host
    // rejoins the pool.
    params.spares = 2;

    // The scratch directory exists only for durable runs and its path never
    // enters the schedule log (it would break cross-process replay hashes).
    let dir = if durable { Some(TempDir::new("curp-chaos").expect("tempdir")) } else { None };
    let mut cluster = match &dir {
        Some(d) => SimCluster::build_durable(Mode::Curp, params, partitions, d.path()).await,
        None => SimCluster::build_partitioned(Mode::Curp, params, partitions).await,
    };

    let pipe = cluster.pipelined_client(0, PipelineConfig::default()).await;
    let history: Arc<Mutex<Vec<HistoryEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let epoch = tokio::time::Instant::now();
    let mut log = ScheduleLog::start();
    let mut errors = Vec::new();

    // Open-loop load, concurrent with the nemeses: arrivals keep coming
    // whether or not earlier operations completed.
    let load = {
        let pipe = Arc::clone(&pipe);
        let history = Arc::clone(&history);
        let mut load_rng = StdRng::seed_from_u64(cfg.seed ^ 0xD00D);
        let (ops, arrival_ns) = (cfg.ops, cfg.arrival_ns);
        tokio::spawn(async move {
            let mut tasks = Vec::new();
            for _ in 0..ops {
                tokio::time::sleep(vns(arrival_ns)).await;
                let (key, kind) = match load_rng.gen_range(0..3u32) {
                    0 => (VALUE_KEYS[load_rng.gen_range(0..VALUE_KEYS.len())], 0),
                    1 => (COUNTER_KEYS[load_rng.gen_range(0..COUNTER_KEYS.len())], 1),
                    _ => {
                        let all: Vec<&str> =
                            VALUE_KEYS.iter().chain(COUNTER_KEYS).copied().collect();
                        (all[load_rng.gen_range(0..all.len())], 2)
                    }
                };
                let payload = load_rng.gen::<u64>();
                tasks.push(tokio::spawn(one_op(
                    Arc::clone(&pipe),
                    Arc::clone(&history),
                    Bytes::from(key.to_owned()),
                    kind,
                    payload,
                    epoch,
                )));
            }
            for t in tasks {
                t.await.expect("op task panicked");
            }
        })
    };

    // The nemesis sequence runs strictly sequentially (overlapping
    // episodes could deadlock — e.g. a churn retrying into a partition
    // that nothing will heal), with drawn gaps between episodes.
    for n in &nemeses {
        let gap_ns = rng.gen_range(30_000..=300_000u64);
        tokio::time::sleep(vns(gap_ns)).await;
        if let Err(e) = n.run(&mut cluster, &mut log).await {
            errors.push(format!("nemesis {} failed: {e}", n.name()));
            break;
        }
    }

    // Heal whatever a failed episode may have left behind, then let the
    // load drain (every retry/timeout is virtual time — wall-clock free).
    cluster.net.heal_all();
    cluster.net.set_default_fault(None);
    load.await.expect("load driver panicked");

    // Anchor the final state: one more increment per counter (a RIFL
    // double-apply shifts it) and a completed read per key (a lost
    // acknowledged write breaks linearization against it).
    let client = pipe.inner();
    for key in COUNTER_KEYS {
        let key = Bytes::from((*key).to_owned());
        let invoke = epoch.elapsed().as_millis() as u64;
        match client.update(Op::Incr { key: key.clone(), delta: 1 }).await {
            Ok(OpResult::Counter(v)) => {
                let ret = epoch.elapsed().as_millis() as u64;
                history.lock().unwrap().push(HistoryEvent {
                    key,
                    op: HistOp::Incr(1, v),
                    invoke,
                    ret,
                });
            }
            Ok(other) => errors.push(format!("anchor incr on {key:?} returned {other:?}")),
            Err(e) => errors.push(format!("anchor incr on {key:?} failed after heal: {e}")),
        }
    }
    for key in VALUE_KEYS.iter().chain(COUNTER_KEYS) {
        let key = Bytes::from((*key).to_owned());
        let invoke = epoch.elapsed().as_millis() as u64;
        match client.read(Op::Get { key: key.clone() }).await {
            Ok(OpResult::Value(v)) => {
                let ret = epoch.elapsed().as_millis() as u64;
                history.lock().unwrap().push(HistoryEvent { key, op: HistOp::Get(v), invoke, ret });
            }
            Ok(other) => errors.push(format!("anchor read on {key:?} returned {other:?}")),
            Err(e) => errors.push(format!("anchor read on {key:?} failed after heal: {e}")),
        }
    }

    let history = std::mem::take(&mut *history.lock().unwrap());
    let completed_ops = history.iter().filter(|e| !e.is_pending()).count();
    let pending_ops = history.len() - completed_ops;
    let violations: Vec<String> =
        failing_keys_detailed(&history).iter().map(|cx| cx.to_string()).collect();

    ChaosReport {
        seed: cfg.seed,
        nemeses: names,
        durable,
        partitions,
        separate_witnesses,
        schedule_hash: log.hash(),
        schedule: log.events().iter().map(|ev| ev.to_string()).collect(),
        completed_ops,
        pending_ops,
        violations,
        history,
        errors,
    }
}

/// Submits one operation through the pipelined client and records its
/// history event — or a *pending* marker for a mutation whose outcome is
/// unknown (the fault may have eaten the ack). Failed reads observed
/// nothing and are skipped entirely.
async fn one_op(
    pipe: Arc<PipelinedClient>,
    history: Arc<Mutex<Vec<HistoryEvent>>>,
    key: Bytes,
    kind: u32,
    payload: u64,
    epoch: tokio::time::Instant,
) {
    // Under the sim's scaled clock (1 virtual ns = 1 tokio ms, see
    // crate::time) `as_millis` yields virtual *nanoseconds*.
    let invoke = epoch.elapsed().as_millis() as u64;
    let (op_for_history, outcome) = match kind {
        0 => {
            let value = Bytes::from(format!("v{payload}"));
            let done = match pipe.submit(Op::Put { key: key.clone(), value: value.clone() }).await {
                Ok(completion) => completion.await.map(|_| ()),
                Err(e) => Err(e),
            };
            (HistOp::Put(value), done)
        }
        1 => {
            let delta = (payload % 4) as i64 + 1;
            let done = match pipe.submit(Op::Incr { key: key.clone(), delta }).await {
                Ok(completion) => completion.await,
                Err(e) => Err(e),
            };
            match done {
                Ok(OpResult::Counter(v)) => (HistOp::Incr(delta, v), Ok(())),
                Ok(other) => panic!("unexpected incr result {other:?}"),
                Err(e) => (HistOp::Incr(delta, 0), Err(e)),
            }
        }
        _ => {
            let done = match pipe.submit(Op::Get { key: key.clone() }).await {
                Ok(completion) => completion.await,
                Err(e) => Err(e),
            };
            match done {
                Ok(OpResult::Value(v)) => (HistOp::Get(v), Ok(())),
                Ok(other) => panic!("unexpected get result {other:?}"),
                // A failed read observed nothing; it constrains no state.
                Err(_) => return,
            }
        }
    };
    let ret = epoch.elapsed().as_millis() as u64;
    let event = match outcome {
        Ok(()) => HistoryEvent { key, op: op_for_history, invoke, ret },
        // Unknown outcome: the op may or may not have taken effect.
        Err(_) => HistoryEvent { key, op: op_for_history, invoke, ret: u64::MAX },
    };
    history.lock().unwrap().push(event);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_seed_runs_clean_and_reports() {
        let report = run_chaos_seed(0xFEED_FACE);
        assert!(report.is_ok(), "{}", report.render_failure());
        assert!(!report.nemeses.is_empty());
        assert!(!report.schedule.is_empty(), "nemeses must have recorded a schedule");
        assert_ne!(report.schedule_hash, 0);
        assert!(report.completed_ops > 0);
        assert_eq!(
            report.repro_line(),
            format!("CHAOS_SEED={} cargo test -q --test chaos", 0xFEED_FACEu64)
        );
    }

    #[test]
    fn same_seed_replays_the_identical_schedule() {
        let a = run_chaos_seed(0xBEEF);
        let b = run_chaos_seed(0xBEEF);
        assert_eq!(a.schedule, b.schedule, "schedules diverged across replays");
        assert_eq!(a.schedule_hash, b.schedule_hash);
        assert_eq!(a.nemeses, b.nemeses);
        assert_eq!(a.completed_ops, b.completed_ops);
        assert_eq!(a.pending_ops, b.pending_ops);
    }
}
