//! The chaos fleet: seed-driven end-to-end fault runs with per-run
//! linearizability checking.
//!
//! One fleet run ([`run_chaos_seed`]) is a pure function of its seed:
//!
//! 1. draw a topology (1–2 partitions, f = 3, witnesses co-hosted or
//!    separate) and a whole [`Episode`] schedule from a seeded RNG:
//!    1–3 *structural* episodes that run strictly in sequence, plus 0–2
//!    network *overlays* that run concurrently with them — two nemeses
//!    live at once, and the heal barrier only exists at schedule end;
//! 2. build the cluster — durable (real on-disk AOFs, journals, fences)
//!    iff any drawn nemesis cold-restarts servers;
//! 3. run open-loop pipelined load *concurrently* with the schedule,
//!    recording every operation's invoke/response window and observed
//!    result in a history (failed mutations become *pending* — their
//!    outcome is unknown and the checker may keep or drop them);
//! 4. audit heal discipline (no residual fault, no crashed host may
//!    survive a schedule whose episodes all completed), heal everything,
//!    anchor the final state with a completed read per key and one more
//!    increment per counter (exactly-once made visible);
//! 5. run the Wing–Gong checker; any violation is reported as a minimal
//!    per-key counterexample window plus a one-line repro
//!    (`CHAOS_SEED=<n> cargo test -q --test chaos`).
//!
//! Because every schedule parameter is drawn *up front* (see
//! [`draw_schedule`]), a failing seed can be re-run with only a subset of
//! its episodes enabled ([`ChaosConfig::episodes`]) without disturbing the
//! other episodes' draws. [`shrink_chaos_seed`] exploits that to greedily
//! remove episodes until no single removal still fails — turning a
//! five-episode pileup into the two-episode interaction that actually
//! broke, with the repro line narrowed to `CHAOS_EPISODES=i,j`.
//!
//! Determinism: the cluster's latency draws, the transport's fault rolls,
//! the load arrivals and the episode schedule all derive from the seed
//! through the paused virtual clock, so the run — and the
//! [`ScheduleLog::hash`] fingerprint of everything the nemeses did —
//! replays identically from the same seed.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;

use parking_lot::Mutex;
use std::task::{Context, Poll};

use bytes::Bytes;
use curp_core::client::{PipelineConfig, PipelinedClient};
use curp_proto::op::{Op, OpResult};
use curp_proto::types::ServerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::{Mode, RamcloudParams, SimCluster};
use crate::lincheck::{failing_keys_detailed, HistOp, HistoryEvent};
use crate::nemesis::{draw_schedule, Episode, ScheduleLog, Topology};
use crate::time::{run_sim, vns};
use crate::TempDir;

/// Keys carrying opaque values (Put/Get traffic).
const VALUE_KEYS: &[&str] = &["alpha", "beta", "gamma"];
/// Keys carrying counters (Incr traffic) — kept disjoint from
/// [`VALUE_KEYS`] so the workload never trips `WrongType`.
const COUNTER_KEYS: &[&str] = &["c0", "c1"];

/// Parameters of one chaos run. [`ChaosConfig::new`] gives the fleet
/// defaults; only tests that need a different load shape override fields.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The seed everything derives from.
    pub seed: u64,
    /// Open-loop arrivals to drive while the nemeses run.
    pub ops: u64,
    /// Virtual nanoseconds between arrivals.
    pub arrival_ns: u64,
    /// If set, only episodes with these indices actually run; everything
    /// is still *drawn* identically, so the survivors keep their exact
    /// parameters. This is the shrinker's knob (`CHAOS_EPISODES=i,j`).
    pub episodes: Option<Vec<usize>>,
    /// Run every backup role on the larger-than-memory
    /// [`curp_storage::TieredStore`] (aggressively tuned so chaos-scale
    /// workloads spill to sorted runs) instead of the in-memory engine.
    pub tiered: bool,
}

impl ChaosConfig {
    /// Fleet defaults: 48 arrivals, one every 40 µs — a ~2 ms load span
    /// that overlaps a multi-episode nemesis sequence.
    pub fn new(seed: u64) -> ChaosConfig {
        ChaosConfig { seed, ops: 48, arrival_ns: 40_000, episodes: None, tiered: false }
    }
}

/// What one chaos run did and found.
#[must_use = "a chaos run's invariant violations must be checked, not dropped"]
#[derive(Debug)]
pub struct ChaosReport {
    /// The seed this run derived from.
    pub seed: u64,
    /// Names of the episodes that actually ran, structural stream first.
    pub nemeses: Vec<&'static str>,
    /// How many episodes the seed drew (before any mask).
    pub n_episodes: usize,
    /// The indices of the episodes that actually ran.
    pub episodes: Vec<usize>,
    /// Whether the cluster was built durable (some nemesis needed disk).
    pub durable: bool,
    /// Drawn partition count.
    pub partitions: usize,
    /// Drawn witness placement.
    pub separate_witnesses: bool,
    /// FNV-1a fingerprint of the nemesis schedule — the replay oracle.
    pub schedule_hash: u64,
    /// The schedule, one formatted line per recorded state change.
    pub schedule: Vec<String>,
    /// History events with a known outcome.
    pub completed_ops: usize,
    /// History events whose outcome is unknown (the checker may drop them).
    pub pending_ops: usize,
    /// Linearizability violations: one formatted minimal counterexample
    /// window per failing key. Empty on a clean run.
    pub violations: Vec<String>,
    /// The full recorded history (completed and pending events), for
    /// deeper triage than the minimal windows in `violations`.
    pub history: Vec<HistoryEvent>,
    /// Harness-level failures (a nemesis that could not complete, a heal
    /// audit miss, an anchor read that kept failing after healing). Empty
    /// on a clean run.
    pub errors: Vec<String>,
}

impl ChaosReport {
    /// Whether the run was clean: no violations, no harness errors.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty() && self.errors.is_empty()
    }

    /// The one-line repro for this run: just the seed for a full run, the
    /// seed plus its episode mask for a shrunk one.
    pub fn repro_line(&self) -> String {
        if self.episodes.len() < self.n_episodes {
            repro_line_episodes(self.seed, &self.episodes)
        } else {
            repro_line(self.seed)
        }
    }

    /// Everything a failing seed's triage needs, as one block of text.
    pub fn render_failure(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("chaos seed {} failed — repro: {}\n", self.seed, self.repro_line()));
        out.push_str(&format!(
            "topology: {} partition(s), f=3, witnesses {}; cluster {}\n",
            self.partitions,
            if self.separate_witnesses { "separate" } else { "co-hosted" },
            if self.durable { "durable" } else { "in-memory" },
        ));
        out.push_str(&format!(
            "episodes {:?} of {} drawn — nemeses: [{}], schedule hash {:#018x}\n",
            self.episodes,
            self.n_episodes,
            self.nemeses.join(", "),
            self.schedule_hash
        ));
        for line in &self.schedule {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        for err in &self.errors {
            out.push_str(&format!("harness error: {err}\n"));
        }
        for v in &self.violations {
            out.push_str(v);
            out.push('\n');
        }
        out
    }
}

/// The one-line repro for a chaos seed.
pub fn repro_line(seed: u64) -> String {
    format!("CHAOS_SEED={seed} cargo test -q --test chaos")
}

/// The one-line repro for a shrunk subset of a chaos seed's episodes.
pub fn repro_line_episodes(seed: u64, mask: &[usize]) -> String {
    let list: Vec<String> = mask.iter().map(|i| i.to_string()).collect();
    format!("CHAOS_SEED={seed} CHAOS_EPISODES={} cargo test -q --test chaos", list.join(","))
}

/// Runs one chaos seed with the fleet defaults.
pub fn run_chaos_seed(seed: u64) -> ChaosReport {
    run_chaos(ChaosConfig::new(seed))
}

/// Runs one configured chaos run inside its own paused-clock simulation.
pub fn run_chaos(cfg: ChaosConfig) -> ChaosReport {
    run_sim(async move { chaos_run(cfg).await })
}

/// The world a seed draws before any episode runs: cluster shape plus the
/// full episode schedule. Splitting this out keeps
/// [`drawn_episode_count`] and [`chaos_run`] byte-identical.
fn draw_world(seed: u64) -> (usize, bool, Topology, Vec<Episode>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let partitions = rng.gen_range(1..=2usize);
    let separate_witnesses = rng.gen_bool(0.5);
    let topo = Topology::of(partitions, 3, separate_witnesses);
    let episodes = draw_schedule(&mut rng, &topo);
    (partitions, separate_witnesses, topo, episodes)
}

/// How many episodes a seed draws — the starting mask for the shrinker.
pub fn drawn_episode_count(seed: u64) -> usize {
    draw_world(seed).3.len()
}

/// Polls a set of non-`Send` futures to completion on the current task.
/// The shim runtime's `spawn` requires `Send` futures, but overlay
/// episodes borrow the fleet's stack — so they are joined by hand.
struct JoinLocal<'a, T> {
    slots: Vec<Option<Pin<Box<dyn Future<Output = T> + 'a>>>>,
    done: Vec<Option<T>>,
}

impl<'a, T> JoinLocal<'a, T> {
    fn new(futs: Vec<Pin<Box<dyn Future<Output = T> + 'a>>>) -> Self {
        let done = futs.iter().map(|_| None).collect();
        JoinLocal { slots: futs.into_iter().map(Some).collect(), done }
    }
}

impl<'a, T: Unpin> Future for JoinLocal<'a, T> {
    type Output = Vec<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Vec<T>> {
        let this = self.get_mut();
        let mut all_done = true;
        for (slot, out) in this.slots.iter_mut().zip(this.done.iter_mut()) {
            if let Some(fut) = slot {
                match fut.as_mut().poll(cx) {
                    Poll::Ready(v) => {
                        *out = Some(v);
                        *slot = None;
                    }
                    Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            Poll::Ready(this.done.iter_mut().map(|d| d.take().expect("joined twice")).collect())
        } else {
            Poll::Pending
        }
    }
}

async fn chaos_run(cfg: ChaosConfig) -> ChaosReport {
    let (partitions, separate_witnesses, topo, all_episodes) = draw_world(cfg.seed);
    let n_episodes = all_episodes.len();
    // Durability and topology come from the *full* drawn schedule, never
    // the mask: a shrunk subset must run on the identical cluster.
    let durable = all_episodes.iter().any(|e| e.nemesis.needs_disk());
    let enabled: Vec<Episode> = all_episodes
        .into_iter()
        .filter(|e| cfg.episodes.as_ref().is_none_or(|mask| mask.contains(&e.index)))
        .collect();
    let enabled_indices: Vec<usize> = enabled.iter().map(|e| e.index).collect();
    let (structural_eps, overlay_eps): (Vec<Episode>, Vec<Episode>) =
        enabled.into_iter().partition(|e| !e.overlay);
    let names: Vec<&'static str> =
        structural_eps.iter().chain(overlay_eps.iter()).map(|e| e.nemesis.name()).collect();

    let mut params = RamcloudParams::new(3);
    params.seed = cfg.seed;
    params.batch_size = 5; // frequent syncs: AOFs and journals both carry state
    params.sync_interval_ns = 30_000;
    params.separate_witnesses = separate_witnesses;
    // Two spares: a successful SplitMigration consumes one permanently
    // (the spare becomes a master), and a later MasterChurn still needs a
    // recovery target. Churn itself is spare-neutral — the deposed host
    // rejoins the pool.
    params.spares = 2;

    // The scratch directory exists only for durable or tiered runs and its
    // path never enters the schedule log (it would break cross-process
    // replay hashes).
    let dir = if durable || cfg.tiered {
        Some(TempDir::new("curp-chaos").expect("tempdir"))
    } else {
        None
    };
    if cfg.tiered {
        let d = dir.as_ref().expect("tiered runs always get a scratch dir");
        let tier_root = d.path().join("tier");
        std::fs::create_dir_all(&tier_root).expect("tier root");
        params.tiered = Some(tier_root);
    }
    let mut cluster = match (&dir, durable) {
        (Some(d), true) => {
            SimCluster::build_durable(Mode::Curp, params, partitions, d.path()).await
        }
        _ => SimCluster::build_partitioned(Mode::Curp, params, partitions).await,
    };

    let pipe = cluster.pipelined_client(0, PipelineConfig::default()).await;
    let history: Arc<Mutex<Vec<HistoryEvent>>> = Arc::new(Mutex::ranked(
        curp_proto::lockrank::FLEET_HISTORY,
        "sim.fleet.history",
        Vec::new(),
    ));
    let epoch = tokio::time::Instant::now();
    let mut log = ScheduleLog::start();
    let mut errors = Vec::new();

    // Open-loop load, concurrent with the episodes: arrivals keep coming
    // whether or not earlier operations completed.
    let load = {
        let pipe = Arc::clone(&pipe);
        let history = Arc::clone(&history);
        let mut load_rng = StdRng::seed_from_u64(cfg.seed ^ 0xD00D);
        let (ops, arrival_ns) = (cfg.ops, cfg.arrival_ns);
        tokio::spawn(async move {
            let mut tasks = Vec::new();
            for _ in 0..ops {
                tokio::time::sleep(vns(arrival_ns)).await;
                let (key, kind) = match load_rng.gen_range(0..3u32) {
                    0 => (VALUE_KEYS[load_rng.gen_range(0..VALUE_KEYS.len())], 0),
                    1 => (COUNTER_KEYS[load_rng.gen_range(0..COUNTER_KEYS.len())], 1),
                    _ => {
                        let all: Vec<&str> =
                            VALUE_KEYS.iter().chain(COUNTER_KEYS).copied().collect();
                        (all[load_rng.gen_range(0..all.len())], 2)
                    }
                };
                let payload = load_rng.gen::<u64>();
                tasks.push(tokio::spawn(one_op(
                    Arc::clone(&pipe),
                    Arc::clone(&history),
                    Bytes::from(key.to_owned()),
                    kind,
                    payload,
                    epoch,
                )));
            }
            for t in tasks {
                t.await.expect("op task panicked");
            }
        })
    };

    // Handles the overlay stream works through while the structural stream
    // holds the `&mut SimCluster`: a cloned network, the shared coordinator,
    // the (layout-constant) replica pool and a shared schedule log.
    let net_handle = cluster.net.clone();
    let coord_handle = Arc::clone(&cluster.coord);
    let pool = topo.replica_pool();
    let overlay_log = log.clone();

    // The structural stream: strictly sequential, with the drawn gap slept
    // before each episode (overlapping *structural* episodes could
    // deadlock — e.g. a churn retrying into a partition nothing will heal).
    let structural = async {
        let mut failed = Vec::new();
        for ep in &structural_eps {
            tokio::time::sleep(vns(ep.at_ns)).await;
            if let Err(e) = ep.nemesis.run(&mut cluster, &mut log).await {
                failed.push(format!(
                    "nemesis {} (episode {}) failed: {e}",
                    ep.nemesis.name(),
                    ep.index
                ));
                break;
            }
        }
        failed
    };

    // The overlay stream: every overlay launches after its own drawn delay
    // and runs *concurrently* — with the other overlays and with whatever
    // structural episode is live. Its master snapshot is taken at launch
    // time from the shared coordinator, so it cuts the links that matter
    // right then and heals exactly those.
    let overlays = async {
        let futs: Vec<Pin<Box<dyn Future<Output = Option<String>> + '_>>> = overlay_eps
            .iter()
            .map(|ep| {
                let net = &net_handle;
                let coord = &coord_handle;
                let pool = &pool;
                let olog = &overlay_log;
                Box::pin(async move {
                    tokio::time::sleep(vns(ep.at_ns)).await;
                    let masters: Vec<ServerId> =
                        coord.config().partitions.iter().map(|p| p.master).collect();
                    match ep.nemesis.run_overlay(net, masters, pool.clone(), olog).await {
                        Ok(()) => None,
                        Err(e) => Some(format!(
                            "overlay {} (episode {}) failed: {e}",
                            ep.nemesis.name(),
                            ep.index
                        )),
                    }
                }) as Pin<Box<dyn Future<Output = Option<String>> + '_>>
            })
            .collect();
        JoinLocal::new(futs).await
    };

    let (structural_errors, overlay_errors) = tokio::join!(structural, overlays);
    errors.extend(structural_errors);
    errors.extend(overlay_errors.into_iter().flatten());

    // Heal-discipline audit: a schedule whose episodes all completed must
    // already be fully healed — every fault cleared by the nemesis that
    // injected it, every crashed host restarted. (After an episode *error*
    // residue is expected; the error itself already fails the run.)
    if errors.is_empty() {
        for fault in cluster.net.residual_faults() {
            errors.push(format!("heal discipline: residual {fault} after schedule end"));
        }
        let cfg_now = cluster.coord.config();
        let mut hosts: Vec<ServerId> = Vec::new();
        for p in &cfg_now.partitions {
            hosts.push(p.master);
            hosts.extend(p.backups.iter().copied());
            hosts.extend(p.witnesses.iter().copied());
        }
        hosts.extend(cluster.coord.spare_servers());
        hosts.sort();
        hosts.dedup();
        for h in hosts {
            if cluster.net.is_crashed(h) {
                errors.push(format!("heal discipline: s{} left crashed after schedule end", h.0));
            }
        }
    }

    // Heal whatever a failed episode may have left behind, then let the
    // load drain (every retry/timeout is virtual time — wall-clock free).
    cluster.net.heal_all();
    cluster.net.set_default_fault(None);
    load.await.expect("load driver panicked");

    // Anchor the final state: one more increment per counter (a RIFL
    // double-apply shifts it) and a completed read per key (a lost
    // acknowledged write breaks linearization against it).
    let client = pipe.inner();
    for key in COUNTER_KEYS {
        let key = Bytes::from((*key).to_owned());
        let invoke = epoch.elapsed().as_millis() as u64;
        match client.update(Op::Incr { key: key.clone(), delta: 1 }).await {
            Ok(OpResult::Counter(v)) => {
                let ret = epoch.elapsed().as_millis() as u64;
                history.lock().push(HistoryEvent { key, op: HistOp::Incr(1, v), invoke, ret });
            }
            Ok(other) => errors.push(format!("anchor incr on {key:?} returned {other:?}")),
            Err(e) => errors.push(format!("anchor incr on {key:?} failed after heal: {e}")),
        }
    }
    for key in VALUE_KEYS.iter().chain(COUNTER_KEYS) {
        let key = Bytes::from((*key).to_owned());
        let invoke = epoch.elapsed().as_millis() as u64;
        match client.read(Op::Get { key: key.clone() }).await {
            Ok(OpResult::Value(v)) => {
                let ret = epoch.elapsed().as_millis() as u64;
                history.lock().push(HistoryEvent { key, op: HistOp::Get(v), invoke, ret });
            }
            Ok(other) => errors.push(format!("anchor read on {key:?} returned {other:?}")),
            Err(e) => errors.push(format!("anchor read on {key:?} failed after heal: {e}")),
        }
    }

    let history = std::mem::take(&mut *history.lock());
    let completed_ops = history.iter().filter(|e| !e.is_pending()).count();
    let pending_ops = history.len() - completed_ops;
    let violations: Vec<String> =
        failing_keys_detailed(&history).iter().map(|cx| cx.to_string()).collect();

    ChaosReport {
        seed: cfg.seed,
        nemeses: names,
        n_episodes,
        episodes: enabled_indices,
        durable,
        partitions,
        separate_witnesses,
        schedule_hash: log.hash(),
        schedule: log.events().iter().map(|ev| ev.to_string()).collect(),
        completed_ops,
        pending_ops,
        violations,
        history,
        errors,
    }
}

/// Greedy delta-debugging over an episode mask: starting from all of
/// `0..n_episodes`, repeatedly drop any single episode whose removal still
/// makes `fails` return true, to a fixed point. The result is 1-minimal —
/// removing any one surviving episode makes the failure disappear.
pub fn shrink(n_episodes: usize, fails: impl Fn(&[usize]) -> bool) -> Vec<usize> {
    let mut mask: Vec<usize> = (0..n_episodes).collect();
    loop {
        let mut shrunk = false;
        for i in 0..mask.len() {
            let mut candidate = mask.clone();
            candidate.remove(i);
            if fails(&candidate) {
                mask = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return mask;
        }
    }
}

/// Shrinks a failing chaos seed to a 1-minimal episode subset by re-running
/// the seed with candidate masks. Each candidate run re-draws the full
/// schedule and instantiates only the masked episodes, so the survivors
/// replay with their exact original parameters. Returns the final mask;
/// [`repro_line_episodes`] turns it into the one-line repro.
pub fn shrink_chaos_seed(seed: u64) -> Vec<usize> {
    let n = drawn_episode_count(seed);
    shrink(n, |mask| {
        let mut cfg = ChaosConfig::new(seed);
        cfg.episodes = Some(mask.to_vec());
        !run_chaos(cfg).is_ok()
    })
}

/// Submits one operation through the pipelined client and records its
/// history event — or a *pending* marker for a mutation whose outcome is
/// unknown (the fault may have eaten the ack). Failed reads observed
/// nothing and are skipped entirely.
async fn one_op(
    pipe: Arc<PipelinedClient>,
    history: Arc<Mutex<Vec<HistoryEvent>>>,
    key: Bytes,
    kind: u32,
    payload: u64,
    epoch: tokio::time::Instant,
) {
    // Under the sim's scaled clock (1 virtual ns = 1 tokio ms, see
    // crate::time) `as_millis` yields virtual *nanoseconds*.
    let invoke = epoch.elapsed().as_millis() as u64;
    let (op_for_history, outcome) = match kind {
        0 => {
            let value = Bytes::from(format!("v{payload}"));
            let done = match pipe.submit(Op::Put { key: key.clone(), value: value.clone() }).await {
                Ok(completion) => completion.await.map(|_| ()),
                Err(e) => Err(e),
            };
            (HistOp::Put(value), done)
        }
        1 => {
            let delta = (payload % 4) as i64 + 1;
            let done = match pipe.submit(Op::Incr { key: key.clone(), delta }).await {
                Ok(completion) => completion.await,
                Err(e) => Err(e),
            };
            match done {
                Ok(OpResult::Counter(v)) => (HistOp::Incr(delta, v), Ok(())),
                Ok(other) => panic!("unexpected incr result {other:?}"),
                Err(e) => (HistOp::Incr(delta, 0), Err(e)),
            }
        }
        _ => {
            let done = match pipe.submit(Op::Get { key: key.clone() }).await {
                Ok(completion) => completion.await,
                Err(e) => Err(e),
            };
            match done {
                Ok(OpResult::Value(v)) => (HistOp::Get(v), Ok(())),
                Ok(other) => panic!("unexpected get result {other:?}"),
                // A failed read observed nothing; it constrains no state.
                Err(_) => return,
            }
        }
    };
    let ret = epoch.elapsed().as_millis() as u64;
    let event = match outcome {
        Ok(()) => HistoryEvent { key, op: op_for_history, invoke, ret },
        // Unknown outcome: the op may or may not have taken effect.
        Err(_) => HistoryEvent { key, op: op_for_history, invoke, ret: u64::MAX },
    };
    history.lock().push(event);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_seed_runs_clean_and_reports() {
        let report = run_chaos_seed(0xFEED_FACE);
        assert!(report.is_ok(), "{}", report.render_failure());
        assert!(!report.nemeses.is_empty());
        assert!(!report.schedule.is_empty(), "nemeses must have recorded a schedule");
        assert_ne!(report.schedule_hash, 0);
        assert!(report.completed_ops > 0);
        assert_eq!(report.episodes.len(), report.n_episodes, "unmasked run enables everything");
        assert_eq!(
            report.repro_line(),
            format!("CHAOS_SEED={} cargo test -q --test chaos", 0xFEED_FACEu64)
        );
    }

    #[test]
    fn same_seed_replays_the_identical_schedule() {
        let a = run_chaos_seed(0xBEEF);
        let b = run_chaos_seed(0xBEEF);
        assert_eq!(a.schedule, b.schedule, "schedules diverged across replays");
        assert_eq!(a.schedule_hash, b.schedule_hash);
        assert_eq!(a.nemeses, b.nemeses);
        assert_eq!(a.completed_ops, b.completed_ops);
        assert_eq!(a.pending_ops, b.pending_ops);
    }

    #[test]
    fn masked_run_keeps_the_surviving_episodes_draws() {
        // A seed that draws at least two episodes, masked down to one: the
        // run still finishes clean and the repro line carries the mask.
        let seed = (0..1024u64)
            .find(|s| drawn_episode_count(*s) >= 2)
            .expect("some seed draws >= 2 episodes");
        let full = run_chaos_seed(seed);
        assert!(full.is_ok(), "{}", full.render_failure());
        let mut cfg = ChaosConfig::new(seed);
        cfg.episodes = Some(vec![0]);
        let masked = run_chaos(cfg);
        assert!(masked.is_ok(), "{}", masked.render_failure());
        assert_eq!(masked.episodes, vec![0]);
        assert_eq!(masked.n_episodes, full.n_episodes);
        assert_eq!(masked.nemeses.first(), full.nemeses.first(), "episode 0 must redraw equal");
        assert_eq!(
            masked.repro_line(),
            format!("CHAOS_SEED={seed} CHAOS_EPISODES=0 cargo test -q --test chaos")
        );
    }

    #[test]
    fn shrinker_reduces_a_failing_schedule_to_the_minimal_subset() {
        // Synthetic failure: the run "fails" iff episodes 1 AND 4 are both
        // enabled (a two-episode interaction buried in a six-episode
        // schedule). Greedy removal must land on exactly that pair.
        let shrunk = shrink(6, |mask| mask.contains(&1) && mask.contains(&4));
        assert_eq!(shrunk, vec![1, 4]);
        assert!(shrunk.len() <= 3, "shrunk repro must be tiny");
        // And a failure nothing in the mask causes shrinks to empty — the
        // harness itself is broken, with no episode to blame.
        assert!(shrink(4, |_| true).is_empty());
    }
}
