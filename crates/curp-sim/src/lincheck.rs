//! A Wing–Gong linearizability checker for key-value histories.
//!
//! Linearizability (§3.4; Herlihy & Wing 1990) demands that every operation
//! appears to take effect atomically at some point between its invocation
//! and its response. The checker searches for such a linearization with the
//! classic Wing–Gong/WGL algorithm, memoized on (linearized-set, state).
//!
//! Key-value stores make this tractable: operations on different keys
//! commute, so a history is linearizable iff its per-key sub-histories are —
//! the checker partitions by key and searches each independently.

use std::collections::{HashMap, HashSet};

use bytes::Bytes;

/// An operation in a recorded history (single key; the key itself lives on
/// the [`HistoryEvent`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistOp {
    /// Write a value; always succeeds.
    Put(Bytes),
    /// Read; carries the value observed (`None` = key absent).
    Get(Option<Bytes>),
    /// Increment by delta; carries the post-increment value returned.
    Incr(i64, i64),
}

/// One completed (or possibly-effective pending) operation.
#[derive(Debug, Clone)]
pub struct HistoryEvent {
    /// The key operated on.
    pub key: Bytes,
    /// Operation + observed result.
    pub op: HistOp,
    /// Invocation timestamp (any monotonic unit).
    pub invoke: u64,
    /// Response timestamp; `u64::MAX` for pending operations (client crashed
    /// or never saw the response — the op may or may not have taken effect).
    pub ret: u64,
}

impl HistoryEvent {
    /// Whether the operation never returned to the client.
    pub fn is_pending(&self) -> bool {
        self.ret == u64::MAX
    }
}

/// Per-key abstract state during the search.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyState {
    Absent,
    Value(Bytes),
    Counter(i64),
}

fn apply(state: &KeyState, op: &HistOp) -> Option<KeyState> {
    match op {
        HistOp::Put(v) => Some(KeyState::Value(v.clone())),
        HistOp::Get(observed) => {
            let current = match state {
                KeyState::Absent => None,
                KeyState::Value(v) => Some(v.clone()),
                KeyState::Counter(c) => Some(Bytes::from(c.to_string())),
            };
            if &current == observed {
                Some(state.clone())
            } else {
                None
            }
        }
        HistOp::Incr(delta, returned) => {
            let current = match state {
                KeyState::Absent => 0,
                KeyState::Counter(c) => *c,
                KeyState::Value(_) => return None,
            };
            let new = current.wrapping_add(*delta);
            if new == *returned {
                Some(KeyState::Counter(new))
            } else {
                None
            }
        }
    }
}

/// Checks a history for linearizability. Pending operations (`ret ==
/// u64::MAX`) are optional: the search may linearize them or drop them.
///
/// Returns `true` if a valid linearization exists. Exponential in the number
/// of *concurrent* operations per key, which real CURP histories keep small.
pub fn check_linearizable(history: &[HistoryEvent]) -> bool {
    failing_keys(history).is_empty()
}

/// Like [`check_linearizable`], but returns the keys whose sub-histories
/// admit no linearization (diagnostics for failing tests).
pub fn failing_keys(history: &[HistoryEvent]) -> Vec<Bytes> {
    let mut per_key: HashMap<Bytes, Vec<&HistoryEvent>> = HashMap::new();
    for e in history {
        per_key.entry(e.key.clone()).or_default().push(e);
    }
    let mut bad: Vec<Bytes> =
        per_key.iter().filter(|(_, events)| !check_key(events)).map(|(k, _)| k.clone()).collect();
    bad.sort();
    bad
}

fn check_key(events: &[&HistoryEvent]) -> bool {
    assert!(events.len() <= 63, "per-key history too large for the bitmask search");
    if events.is_empty() {
        return true;
    }
    let mut memo: HashSet<(u64, KeyState)> = HashSet::new();
    search(events, 0, &KeyState::Absent, &mut memo)
}

/// `done` is the bitmask of linearized ops.
fn search(
    events: &[&HistoryEvent],
    done: u64,
    state: &KeyState,
    memo: &mut HashSet<(u64, KeyState)>,
) -> bool {
    // Success once every *completed* op is linearized; the remaining pending
    // ops may simply never have happened. (`done == full` is subsumed.)
    let all_completed_done =
        events.iter().enumerate().all(|(i, e)| e.is_pending() || done & (1 << i) != 0);
    if all_completed_done {
        return true;
    }

    if !memo.insert((done, state.clone())) {
        return false;
    }
    // An op is a candidate next linearization point iff it is not yet done
    // and no *other* not-yet-done op returned before it was invoked (the op
    // with the earliest return must come first among overlapping ops).
    let min_ret = events
        .iter()
        .enumerate()
        .filter(|(i, _)| done & (1 << i) == 0)
        .map(|(_, e)| e.ret)
        .min()
        .unwrap_or(u64::MAX);
    for (i, e) in events.iter().enumerate() {
        if done & (1 << i) != 0 {
            continue;
        }
        if e.invoke > min_ret {
            continue; // something else must linearize first
        }
        if let Some(next) = apply(state, &e.op) {
            if search(events, done | (1 << i), &next, memo) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn put(key: &str, v: &str, invoke: u64, ret: u64) -> HistoryEvent {
        HistoryEvent { key: b(key), op: HistOp::Put(b(v)), invoke, ret }
    }

    fn get(key: &str, v: Option<&str>, invoke: u64, ret: u64) -> HistoryEvent {
        HistoryEvent { key: b(key), op: HistOp::Get(v.map(b)), invoke, ret }
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let h = vec![
            put("k", "1", 0, 10),
            get("k", Some("1"), 20, 30),
            put("k", "2", 40, 50),
            get("k", Some("2"), 60, 70),
        ];
        assert!(check_linearizable(&h));
    }

    #[test]
    fn stale_read_is_not_linearizable() {
        let h = vec![
            put("k", "1", 0, 10),
            put("k", "2", 20, 30),
            // Reads "1" strictly after "2" completed: illegal.
            get("k", Some("1"), 40, 50),
        ];
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn concurrent_writes_allow_either_order() {
        let h1 = vec![put("k", "a", 0, 100), put("k", "b", 0, 100), get("k", Some("a"), 200, 210)];
        let h2 = vec![put("k", "a", 0, 100), put("k", "b", 0, 100), get("k", Some("b"), 200, 210)];
        assert!(check_linearizable(&h1));
        assert!(check_linearizable(&h2));
    }

    #[test]
    fn read_concurrent_with_write_may_see_either_value() {
        let base = put("k", "old", 0, 10);
        let write = put("k", "new", 100, 200);
        for observed in ["old", "new"] {
            let h = vec![base.clone(), write.clone(), get("k", Some(observed), 150, 160)];
            assert!(check_linearizable(&h), "observed {observed}");
        }
        // But a value that was never written is illegal.
        let h = vec![base, write, get("k", Some("ghost"), 150, 160)];
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn non_atomic_read_pair_is_rejected() {
        // Two sequential reads around a completed write must not go
        // backwards in time.
        let h = vec![
            put("k", "1", 0, 10),
            put("k", "2", 20, 30),
            get("k", Some("2"), 40, 50),
            get("k", Some("1"), 60, 70),
        ];
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn pending_op_may_or_may_not_have_happened() {
        // Client crashed mid-put: both observations are legal (§3.4: "If the
        // client crashes before externalizing the result, the RPC may or may
        // not finish").
        let pending =
            HistoryEvent { key: b("k"), op: HistOp::Put(b("x")), invoke: 50, ret: u64::MAX };
        let h1 = vec![put("k", "1", 0, 10), pending.clone(), get("k", Some("x"), 100, 110)];
        let h2 = vec![put("k", "1", 0, 10), pending, get("k", Some("1"), 100, 110)];
        assert!(check_linearizable(&h1));
        assert!(check_linearizable(&h2));
    }

    #[test]
    fn incr_results_must_chain() {
        let incr =
            |d, r, i, t| HistoryEvent { key: b("c"), op: HistOp::Incr(d, r), invoke: i, ret: t };
        let ok = vec![incr(1, 1, 0, 10), incr(2, 3, 20, 30), get("c", Some("3"), 40, 50)];
        assert!(check_linearizable(&ok));
        // A lost increment (result repeats) is a linearizability violation.
        let bad = vec![incr(1, 1, 0, 10), incr(1, 1, 20, 30)];
        assert!(!check_linearizable(&bad));
        // A doubly-applied increment is too.
        let bad2 = vec![incr(1, 1, 0, 10), incr(1, 3, 20, 30)];
        assert!(!check_linearizable(&bad2));
    }

    #[test]
    fn keys_are_independent() {
        // Interleaved ops on different keys never interfere.
        let h = vec![
            put("a", "1", 0, 100),
            put("b", "2", 0, 100),
            get("a", Some("1"), 150, 160),
            get("b", Some("2"), 150, 160),
            get("a", None, 0, 1), // before the put completed? concurrent: ok
        ];
        assert!(check_linearizable(&h));
    }

    #[test]
    fn read_of_absent_key_after_put_completes_is_rejected() {
        let h = vec![put("k", "1", 0, 10), get("k", None, 20, 30)];
        assert!(!check_linearizable(&h));
    }
}
