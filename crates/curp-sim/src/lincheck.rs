//! A Wing–Gong linearizability checker for key-value histories.
//!
//! Linearizability (§3.4; Herlihy & Wing 1990) demands that every operation
//! appears to take effect atomically at some point between its invocation
//! and its response. The checker searches for such a linearization with the
//! classic Wing–Gong/WGL algorithm, memoized on (linearized-set, state).
//!
//! Key-value stores make this tractable: operations on different keys
//! commute, so a history is linearizable iff its per-key sub-histories are —
//! the checker partitions by key and searches each independently.

use std::collections::{HashMap, HashSet};
use std::fmt;

use bytes::Bytes;

/// An operation in a recorded history (single key; the key itself lives on
/// the [`HistoryEvent`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistOp {
    /// Write a value; always succeeds.
    Put(Bytes),
    /// Read; carries the value observed (`None` = key absent).
    Get(Option<Bytes>),
    /// Increment by delta; carries the post-increment value returned.
    Incr(i64, i64),
}

/// One completed (or possibly-effective pending) operation.
#[derive(Debug, Clone)]
pub struct HistoryEvent {
    /// The key operated on.
    pub key: Bytes,
    /// Operation + observed result.
    pub op: HistOp,
    /// Invocation timestamp (any monotonic unit).
    pub invoke: u64,
    /// Response timestamp; `u64::MAX` for pending operations (client crashed
    /// or never saw the response — the op may or may not have taken effect).
    pub ret: u64,
}

impl HistoryEvent {
    /// Whether the operation never returned to the client.
    pub fn is_pending(&self) -> bool {
        self.ret == u64::MAX
    }
}

/// Per-key abstract state during the search.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyState {
    Absent,
    Value(Bytes),
    Counter(i64),
}

fn apply(state: &KeyState, op: &HistOp) -> Option<KeyState> {
    match op {
        HistOp::Put(v) => Some(KeyState::Value(v.clone())),
        HistOp::Get(observed) => {
            let current = match state {
                KeyState::Absent => None,
                KeyState::Value(v) => Some(v.clone()),
                KeyState::Counter(c) => Some(Bytes::from(c.to_string())),
            };
            if &current == observed {
                Some(state.clone())
            } else {
                None
            }
        }
        HistOp::Incr(delta, returned) => {
            let current = match state {
                KeyState::Absent => 0,
                KeyState::Counter(c) => *c,
                KeyState::Value(_) => return None,
            };
            let new = current.wrapping_add(*delta);
            if new == *returned {
                Some(KeyState::Counter(new))
            } else {
                None
            }
        }
    }
}

/// Checks a history for linearizability. Pending operations (`ret ==
/// u64::MAX`) are optional: the search may linearize them or drop them.
///
/// Returns `true` if a valid linearization exists. Exponential in the number
/// of *concurrent* operations per key, which real CURP histories keep small.
pub fn check_linearizable(history: &[HistoryEvent]) -> bool {
    failing_keys(history).is_empty()
}

/// Like [`check_linearizable`], but returns the keys whose sub-histories
/// admit no linearization (diagnostics for failing tests).
pub fn failing_keys(history: &[HistoryEvent]) -> Vec<Bytes> {
    let mut per_key: HashMap<Bytes, Vec<&HistoryEvent>> = HashMap::new();
    for e in history {
        per_key.entry(e.key.clone()).or_default().push(e);
    }
    let mut bad: Vec<Bytes> =
        per_key.iter().filter(|(_, events)| !check_key(events)).map(|(k, _)| k.clone()).collect();
    bad.sort();
    bad
}

/// A minimal conflicting op window for one non-linearizable key.
///
/// `window` is minimal up to *value support*: removing any single event
/// either makes the remainder linearizable (the op participates in the
/// conflict) or orphans a value some read in the window observed (the op
/// explains where that value came from — dropping it would leave a
/// technically-failing but unreadable "ghost value" window). Shrinking is
/// sound because a failing *sub*-history implies the full history fails:
/// dropping events only removes constraints.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The key whose sub-history admits no linearization.
    pub key: Bytes,
    /// The conflicting ops, sorted by (invoke, ret).
    pub window: Vec<HistoryEvent>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "key {:?}: {}-op conflict window (each op is necessary):",
            String::from_utf8_lossy(&self.key),
            self.window.len()
        )?;
        for e in &self.window {
            let op = match &e.op {
                HistOp::Put(v) => format!("put {:?}", String::from_utf8_lossy(v)),
                HistOp::Get(Some(v)) => format!("get -> {:?}", String::from_utf8_lossy(v)),
                HistOp::Get(None) => "get -> (absent)".to_string(),
                HistOp::Incr(d, r) => format!("incr {d:+} -> {r}"),
            };
            if e.is_pending() {
                writeln!(f, "  [{} ..pending] {op}", e.invoke)?;
            } else {
                writeln!(f, "  [{} .. {}] {op}", e.invoke, e.ret)?;
            }
        }
        Ok(())
    }
}

/// Like [`failing_keys`], but with a minimal per-key counterexample trace:
/// for every failing key, the smallest window of its ops that still admits
/// no linearization. This is the debuggable artifact a chaos failure prints
/// — the conflict is visible without rerunning the seed.
pub fn failing_keys_detailed(history: &[HistoryEvent]) -> Vec<Counterexample> {
    let mut per_key: HashMap<Bytes, Vec<&HistoryEvent>> = HashMap::new();
    for e in history {
        per_key.entry(e.key.clone()).or_default().push(e);
    }
    let mut bad: Vec<Counterexample> = per_key
        .iter()
        .filter(|(_, events)| !check_key(events))
        .map(|(k, events)| Counterexample { key: k.clone(), window: shrink(events) })
        .collect();
    bad.sort_by(|a, b| a.key.cmp(&b.key));
    bad
}

/// Shrinks a failing per-key history to a 1-minimal failing window.
fn shrink(events: &[&HistoryEvent]) -> Vec<HistoryEvent> {
    let mut sorted: Vec<&HistoryEvent> = events.to_vec();
    sorted.sort_by_key(|e| (e.invoke, e.ret));
    // Minimal failing prefix first (cheap, and it anchors the conflict at
    // the earliest op whose addition breaks the history).
    let mut window = sorted.clone();
    for n in 1..=sorted.len() {
        if !check_key(&sorted[..n]) {
            window = sorted[..n].to_vec();
            break;
        }
    }
    // Greedy single-event elimination to a fixpoint. Value-support events
    // are kept even when removable: a window whose read observes a value no
    // remaining op wrote is still failing, but no longer tells the reader
    // anything.
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < window.len() {
            if supports_observed_value(window[i], &window) {
                i += 1;
                continue;
            }
            let mut cand = window.clone();
            cand.remove(i);
            if !check_key(&cand) {
                window = cand;
                removed = true;
            } else {
                i += 1;
            }
        }
        if !removed {
            break;
        }
    }
    window.into_iter().cloned().collect()
}

/// Whether `ev` is a completed mutation whose result some *other* window op
/// observed — the provenance of a read value or of a counter chain link.
/// Pending mutations never support anything: their recorded result was never
/// externalized.
fn supports_observed_value(ev: &HistoryEvent, window: &[&HistoryEvent]) -> bool {
    if ev.is_pending() {
        return false;
    }
    let others = window.iter().filter(|o| !std::ptr::eq(**o, ev));
    match &ev.op {
        HistOp::Put(v) => {
            let mut others = others;
            others.any(|o| matches!(&o.op, HistOp::Get(Some(g)) if g == v))
        }
        HistOp::Incr(_, r) => {
            let shown = r.to_string();
            let mut others = others;
            others.any(|o| match &o.op {
                HistOp::Get(Some(g)) => g.as_ref() == shown.as_bytes(),
                HistOp::Incr(d2, r2) => !o.is_pending() && r2.wrapping_sub(*d2) == *r,
                _ => false,
            })
        }
        HistOp::Get(_) => false,
    }
}

fn check_key(events: &[&HistoryEvent]) -> bool {
    assert!(events.len() <= 63, "per-key history too large for the bitmask search");
    if events.is_empty() {
        return true;
    }
    let mut memo: HashSet<(u64, KeyState)> = HashSet::new();
    search(events, 0, &KeyState::Absent, &mut memo)
}

/// `done` is the bitmask of linearized ops.
fn search(
    events: &[&HistoryEvent],
    done: u64,
    state: &KeyState,
    memo: &mut HashSet<(u64, KeyState)>,
) -> bool {
    // Success once every *completed* op is linearized; the remaining pending
    // ops may simply never have happened. (`done == full` is subsumed.)
    let all_completed_done =
        events.iter().enumerate().all(|(i, e)| e.is_pending() || done & (1 << i) != 0);
    if all_completed_done {
        return true;
    }

    if !memo.insert((done, state.clone())) {
        return false;
    }
    // An op is a candidate next linearization point iff it is not yet done
    // and no *other* not-yet-done op returned before it was invoked (the op
    // with the earliest return must come first among overlapping ops).
    let min_ret = events
        .iter()
        .enumerate()
        .filter(|(i, _)| done & (1 << i) == 0)
        .map(|(_, e)| e.ret)
        .min()
        .unwrap_or(u64::MAX);
    for (i, e) in events.iter().enumerate() {
        if done & (1 << i) != 0 {
            continue;
        }
        if e.invoke > min_ret {
            continue; // something else must linearize first
        }
        if let Some(next) = apply(state, &e.op) {
            if search(events, done | (1 << i), &next, memo) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn put(key: &str, v: &str, invoke: u64, ret: u64) -> HistoryEvent {
        HistoryEvent { key: b(key), op: HistOp::Put(b(v)), invoke, ret }
    }

    fn get(key: &str, v: Option<&str>, invoke: u64, ret: u64) -> HistoryEvent {
        HistoryEvent { key: b(key), op: HistOp::Get(v.map(b)), invoke, ret }
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let h = vec![
            put("k", "1", 0, 10),
            get("k", Some("1"), 20, 30),
            put("k", "2", 40, 50),
            get("k", Some("2"), 60, 70),
        ];
        assert!(check_linearizable(&h));
    }

    #[test]
    fn stale_read_is_not_linearizable() {
        let h = vec![
            put("k", "1", 0, 10),
            put("k", "2", 20, 30),
            // Reads "1" strictly after "2" completed: illegal.
            get("k", Some("1"), 40, 50),
        ];
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn concurrent_writes_allow_either_order() {
        let h1 = vec![put("k", "a", 0, 100), put("k", "b", 0, 100), get("k", Some("a"), 200, 210)];
        let h2 = vec![put("k", "a", 0, 100), put("k", "b", 0, 100), get("k", Some("b"), 200, 210)];
        assert!(check_linearizable(&h1));
        assert!(check_linearizable(&h2));
    }

    #[test]
    fn read_concurrent_with_write_may_see_either_value() {
        let base = put("k", "old", 0, 10);
        let write = put("k", "new", 100, 200);
        for observed in ["old", "new"] {
            let h = vec![base.clone(), write.clone(), get("k", Some(observed), 150, 160)];
            assert!(check_linearizable(&h), "observed {observed}");
        }
        // But a value that was never written is illegal.
        let h = vec![base, write, get("k", Some("ghost"), 150, 160)];
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn non_atomic_read_pair_is_rejected() {
        // Two sequential reads around a completed write must not go
        // backwards in time.
        let h = vec![
            put("k", "1", 0, 10),
            put("k", "2", 20, 30),
            get("k", Some("2"), 40, 50),
            get("k", Some("1"), 60, 70),
        ];
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn pending_op_may_or_may_not_have_happened() {
        // Client crashed mid-put: both observations are legal (§3.4: "If the
        // client crashes before externalizing the result, the RPC may or may
        // not finish").
        let pending =
            HistoryEvent { key: b("k"), op: HistOp::Put(b("x")), invoke: 50, ret: u64::MAX };
        let h1 = vec![put("k", "1", 0, 10), pending.clone(), get("k", Some("x"), 100, 110)];
        let h2 = vec![put("k", "1", 0, 10), pending, get("k", Some("1"), 100, 110)];
        assert!(check_linearizable(&h1));
        assert!(check_linearizable(&h2));
    }

    #[test]
    fn incr_results_must_chain() {
        let incr =
            |d, r, i, t| HistoryEvent { key: b("c"), op: HistOp::Incr(d, r), invoke: i, ret: t };
        let ok = vec![incr(1, 1, 0, 10), incr(2, 3, 20, 30), get("c", Some("3"), 40, 50)];
        assert!(check_linearizable(&ok));
        // A lost increment (result repeats) is a linearizability violation.
        let bad = vec![incr(1, 1, 0, 10), incr(1, 1, 20, 30)];
        assert!(!check_linearizable(&bad));
        // A doubly-applied increment is too.
        let bad2 = vec![incr(1, 1, 0, 10), incr(1, 3, 20, 30)];
        assert!(!check_linearizable(&bad2));
    }

    #[test]
    fn keys_are_independent() {
        // Interleaved ops on different keys never interfere.
        let h = vec![
            put("a", "1", 0, 100),
            put("b", "2", 0, 100),
            get("a", Some("1"), 150, 160),
            get("b", Some("2"), 150, 160),
            get("a", None, 0, 1), // before the put completed? concurrent: ok
        ];
        assert!(check_linearizable(&h));
    }

    #[test]
    fn read_of_absent_key_after_put_completes_is_rejected() {
        let h = vec![put("k", "1", 0, 10), get("k", None, 20, 30)];
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn counterexample_window_is_minimal() {
        // A stale read: "1" observed strictly after two later puts
        // completed. The window must shrink to three ops — put "1" as the
        // observed value's provenance, ONE of the overwrites, and the get —
        // while the redundant second overwrite and the healthy key drop out.
        let h = vec![
            put("k", "1", 0, 10),
            put("k", "2", 20, 30),
            put("k", "3", 32, 38),
            get("k", Some("1"), 40, 50),
            // An unrelated healthy key must not appear in the output.
            put("other", "x", 0, 10),
        ];
        let bad = failing_keys_detailed(&h);
        assert_eq!(bad.len(), 1);
        let cx = &bad[0];
        assert_eq!(cx.key, b("k"));
        assert_eq!(cx.window.len(), 3, "window not minimal: {cx}");
        assert!(matches!(&cx.window[0].op, HistOp::Put(v) if v == &b("1")));
        assert!(
            matches!(&cx.window[1].op, HistOp::Put(v) if v == &b("2") || v == &b("3")),
            "one overwrite must remain: {cx}"
        );
        assert!(matches!(&cx.window[2].op, HistOp::Get(Some(v)) if v == &b("1")));
        // Every window is genuinely failing.
        let refs: Vec<&HistoryEvent> = cx.window.iter().collect();
        assert!(!check_key(&refs));
        // The display names the key and both ops.
        let shown = cx.to_string();
        assert!(shown.contains("key \"k\"") && shown.contains("put") && shown.contains("get"));
    }

    #[test]
    fn counterexamples_empty_for_linearizable_history() {
        let h = vec![put("k", "1", 0, 10), get("k", Some("1"), 20, 30)];
        assert!(failing_keys_detailed(&h).is_empty());
    }

    #[test]
    fn counterexample_preserves_pending_markers() {
        // A lost-update counter conflict where a pending op is load-bearing:
        // incr returning 1 twice fails regardless, and the minimal window
        // keeps both completed increments (the pending one is droppable).
        let incr =
            |d, r, i, t| HistoryEvent { key: b("c"), op: HistOp::Incr(d, r), invoke: i, ret: t };
        let h = vec![incr(1, 1, 0, 10), incr(1, 0, 20, u64::MAX), incr(1, 1, 40, 50)];
        let bad = failing_keys_detailed(&h);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].window.len(), 2, "pending op should shrink away: {}", bad[0]);
        assert!(bad[0].window.iter().all(|e| !e.is_pending()));
    }
}
