//! The RAMCloud-class simulated cluster (Figures 5, 6, 7 and 12).
//!
//! Calibration targets come straight from §5.1: small unreplicated writes
//! ≈ 6.9 µs, CURP (f=3) ≈ 7.3 µs, synchronous 3-way replication ≈ 13.8 µs,
//! single-server CURP throughput ≈ 4× the synchronous baseline with masters
//! bottlenecked on a dispatch thread. The model prices four things:
//!
//! * one-way network delay — the InfiniBand profile (~2.2 µs, thin tail);
//! * a per-message *dispatch* cost at every server (the RAMCloud dispatch
//!   thread), which serializes and therefore bounds throughput;
//! * a per-message client-side cost (NIC/doorbell handling) — this is what
//!   makes CURP f=3 slightly slower than unreplicated (more responses to
//!   process), the paper's 0.4 µs;
//! * a per-operation execution cost on the master's worker threads
//!   (parallel, so it adds latency but not a throughput ceiling).

use std::sync::Arc;
use std::time::Duration;

use curp_core::client::{ClientConfig, CurpClient};
use curp_core::coordinator::{Coordinator, CoordinatorHandler};
use curp_core::master::MasterConfig;
use curp_core::server::{CurpServer, ServerHandler};
use curp_proto::cluster::HashRange;
use curp_proto::op::Op;
use curp_proto::types::{MasterId, ServerId};
use curp_transport::latency::NetProfile;
use curp_transport::mem::{MemNetwork, ServerSpec};
use curp_witness::cache::CacheConfig;
use curp_workload::{LatencyRecorder, Workload, WorkloadOp};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::time::{to_virtual_ns, vns, vus, MODEL_SCALE};

/// Which of the paper's four systems to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// CURP: speculative masters + witnesses (the contribution).
    Curp,
    /// "Original RAMCloud": synchronous replication before every response.
    Original,
    /// Async replication: masters respond before syncing, clients complete
    /// without witnesses — fast but *not* durable (Figure 6's upper bound).
    Async,
    /// No replication at all.
    Unreplicated,
}

/// Calibrated model constants (virtual nanoseconds).
#[derive(Debug, Clone)]
pub struct RamcloudParams {
    /// Replication / witness factor `f`.
    pub f: usize,
    /// Master dispatch cost per message.
    pub master_dispatch_ns: u64,
    /// Backup/witness dispatch cost per message.
    pub server_dispatch_ns: u64,
    /// Client per-message cost.
    pub client_dispatch_ns: u64,
    /// Master worker execution cost per operation.
    pub exec_ns: u64,
    /// Sync batch size (Figure 12 sweeps this).
    pub batch_size: usize,
    /// Idle flush interval for the background syncer (virtual ns).
    pub sync_interval_ns: u64,
    /// Enable the §4.4 hot-key preemptive sync heuristic.
    pub hotkey_sync: bool,
    /// RNG seed for the network latency model.
    pub seed: u64,
}

impl RamcloudParams {
    /// Defaults calibrated against Table 1 / §5.1.
    pub fn new(f: usize) -> Self {
        RamcloudParams {
            f,
            master_dispatch_ns: 600,
            server_dispatch_ns: 300,
            client_dispatch_ns: 55,
            exec_ns: 900,
            batch_size: 50,
            sync_interval_ns: 20_000, // 20 µs idle flush
            hotkey_sync: true,
            seed: 0xCB5B_F00D,
        }
    }
}

/// Output of a closed-loop run.
#[derive(Debug)]
pub struct RunResult {
    /// Per-operation latencies (write ops only unless noted).
    pub writes: LatencyRecorder,
    /// Read latencies (empty for write-only workloads).
    pub reads: LatencyRecorder,
    /// Completed operations per virtual second.
    pub throughput_ops_per_sec: f64,
    /// Total operations completed.
    pub ops: u64,
}

const COORD: ServerId = ServerId(9_999);

/// A simulated RAMCloud-class cluster.
pub struct SimCluster {
    /// The underlying network (exposed for fault injection in tests).
    pub net: MemNetwork,
    /// The coordinator (exposed for recovery orchestration in tests).
    pub coord: Arc<Coordinator>,
    /// All servers, master first.
    pub servers: Vec<Arc<CurpServer>>,
    /// The partition's master id.
    pub master_id: MasterId,
    mode: Mode,
    params: RamcloudParams,
}

impl SimCluster {
    /// Builds a one-partition cluster in the given mode.
    pub async fn build(mode: Mode, params: RamcloudParams) -> SimCluster {
        let f = match mode {
            Mode::Unreplicated => 0,
            _ => params.f,
        };
        let net = MemNetwork::new(params.seed);
        net.set_default_latency(Arc::new(NetProfile::Infiniband.model().scaled(MODEL_SCALE)));
        net.set_rpc_timeout(vus(5_000));

        let master_cfg = MasterConfig {
            batch_size: params.batch_size,
            sync_interval: vns(params.sync_interval_ns),
            exec_cost: vns(params.exec_ns),
            hotkey_sync: params.hotkey_sync && mode == Mode::Curp,
            hotkey_window: params.batch_size as u64,
            sync_retry_limit: 10,
            sync_retry_backoff: vus(100),
            sync_every_op: mode == Mode::Original,
            sync_coalesce: Duration::ZERO,
            sync_workers: 4,
            sync_group_commit: false,
            ..MasterConfig::default()
        };
        let net_for_factory = net.clone();
        let coord = Coordinator::new(
            Box::new(move |id| net_for_factory.client(id)),
            master_cfg,
            u64::MAX / 4, // leases effectively never expire inside a run
        );
        net.add_simple_server(COORD, Arc::new(CoordinatorHandler(Arc::clone(&coord))));

        // Master on s1 with its dispatch thread; f replica servers hosting
        // backup + witness (co-hosted, Figure 2); one spare for recovery.
        let mut servers = Vec::new();
        for i in 1..=(1 + f + 1) {
            let s = CurpServer::new(ServerId(i as u64), CacheConfig::default());
            let dispatch = if i == 1 {
                vns(params.master_dispatch_ns)
            } else {
                vns(params.server_dispatch_ns)
            };
            net.add_server(
                s.id(),
                Arc::new(ServerHandler(Arc::clone(&s))),
                ServerSpec { dispatch_cost: dispatch },
            );
            coord.register_server(Arc::clone(&s));
            servers.push(s);
        }
        let backups: Vec<ServerId> = (2..2 + f).map(|i| ServerId(i as u64)).collect();
        let witnesses: Vec<ServerId> =
            if mode == Mode::Curp { backups.clone() } else { Vec::new() };
        let master_id = coord
            .create_partition(ServerId(1), backups, witnesses, HashRange::FULL)
            .await
            .expect("create partition");
        SimCluster { net, coord, servers, master_id, mode, params }
    }

    /// Creates a client. Client ids start at 100 and each gets its own
    /// dispatch model (per-message NIC cost).
    pub async fn client(&self, index: usize) -> Arc<CurpClient> {
        let id = ServerId(100 + index as u64);
        // Clients are registered as (handler-less) servers only to give them
        // a dispatch cost; they never receive requests.
        self.net.add_server(
            id,
            Arc::new(|_from: ServerId, _req| async move {
                curp_proto::message::Response::Retry { reason: "client".into() }
            }),
            ServerSpec { dispatch_cost: vns(self.params.client_dispatch_ns) },
        );
        let cfg = ClientConfig {
            record_witnesses: self.mode == Mode::Curp,
            max_retries: 50,
            retry_backoff: vus(50),
        };
        Arc::new(
            CurpClient::connect(self.net.client(id), COORD, cfg).await.expect("client connect"),
        )
    }

    /// Runs `clients` closed-loop clients for `duration` of virtual time,
    /// each drawing operations from its own copy of `make_workload()`.
    pub async fn run_closed_loop(
        &self,
        clients: usize,
        duration: Duration,
        make_workload: impl Fn(usize) -> Workload,
    ) -> RunResult {
        let mut handles = Vec::new();
        for c in 0..clients {
            let client = self.client(c).await;
            let mut workload = make_workload(c);
            let seed = self.params.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            handles.push(tokio::spawn(async move {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut writes = LatencyRecorder::new();
                let mut reads = LatencyRecorder::new();
                let deadline = tokio::time::Instant::now() + duration;
                let mut ops = 0u64;
                while tokio::time::Instant::now() < deadline {
                    let op = workload.next_op(&mut rng);
                    let t0 = tokio::time::Instant::now();
                    match op {
                        WorkloadOp::Update { key, value } => {
                            client.update(Op::Put { key, value }).await.expect("update failed");
                            writes.record_ns(to_virtual_ns(t0.elapsed()));
                        }
                        WorkloadOp::Read { key } => {
                            client.read(Op::Get { key }).await.expect("read failed");
                            reads.record_ns(to_virtual_ns(t0.elapsed()));
                        }
                    }
                    ops += 1;
                }
                (writes, reads, ops)
            }));
        }
        let mut writes = LatencyRecorder::new();
        let mut reads = LatencyRecorder::new();
        let mut total_ops = 0;
        for h in handles {
            let (w, r, ops) = h.await.expect("client task");
            writes.merge(&w);
            reads.merge(&r);
            total_ops += ops;
        }
        let secs = to_virtual_ns(duration) as f64 / 1e9;
        RunResult { writes, reads, throughput_ops_per_sec: total_ops as f64 / secs, ops: total_ops }
    }

    /// Measures sequential write latency from a single client (Figure 5):
    /// `samples` back-to-back 100 B writes to random keys.
    pub async fn measure_write_latency(&self, samples: usize, keys: u64) -> LatencyRecorder {
        let client = self.client(0).await;
        let mut workload = Workload::uniform_writes(keys);
        let mut rng = StdRng::seed_from_u64(self.params.seed ^ 0xFEED);
        let mut rec = LatencyRecorder::new();
        for _ in 0..samples {
            let op = loop {
                match workload.next_op(&mut rng) {
                    WorkloadOp::Update { key, value } => break Op::Put { key, value },
                    WorkloadOp::Read { .. } => continue,
                }
            };
            let t0 = tokio::time::Instant::now();
            client.update(op).await.expect("write failed");
            rec.record_ns(to_virtual_ns(t0.elapsed()));
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::run_sim;

    fn median_us(mode: Mode, f: usize) -> f64 {
        run_sim(async move {
            let cluster = SimCluster::build(mode, RamcloudParams::new(f)).await;
            let mut rec = cluster.measure_write_latency(300, 100_000).await;
            rec.median_us()
        })
    }

    #[test]
    fn unreplicated_latency_matches_paper_scale() {
        let m = median_us(Mode::Unreplicated, 0);
        // §5.1: 6.9 µs.
        assert!((6.0..8.0).contains(&m), "unreplicated median {m:.2} µs");
    }

    #[test]
    fn curp_f3_is_close_to_unreplicated() {
        let unrep = median_us(Mode::Unreplicated, 0);
        let curp = median_us(Mode::Curp, 3);
        // §5.1: 7.3 vs 6.9 µs — within ~10%.
        let overhead = curp - unrep;
        assert!((0.0..1.5).contains(&overhead), "CURP {curp:.2} vs unreplicated {unrep:.2}");
    }

    #[test]
    fn original_is_roughly_twice_curp() {
        let curp = median_us(Mode::Curp, 3);
        let orig = median_us(Mode::Original, 3);
        let ratio = orig / curp;
        // §5.1: "CURP cuts the median write latencies in half" (13.8 / 7.3 ≈ 1.9).
        assert!((1.5..2.6).contains(&ratio), "orig {orig:.2} / curp {curp:.2} = {ratio:.2}");
    }

    #[test]
    fn closed_loop_throughput_ranks_modes_correctly() {
        // Shape check on a small run: Unreplicated >= Async >= CURP >> Original.
        let tp = |mode, f| {
            run_sim(async move {
                let cluster = SimCluster::build(mode, RamcloudParams::new(f)).await;
                let r = cluster
                    .run_closed_loop(10, vus(20_000), |_| Workload::uniform_writes(100_000))
                    .await;
                r.throughput_ops_per_sec
            })
        };
        let unrep = tp(Mode::Unreplicated, 0);
        let asy = tp(Mode::Async, 3);
        let curp = tp(Mode::Curp, 3);
        let orig = tp(Mode::Original, 3);
        assert!(unrep > asy * 0.95, "unrep {unrep:.0} vs async {asy:.0}");
        assert!(asy > curp * 0.95, "async {asy:.0} vs curp {curp:.0}");
        assert!(curp > orig * 2.0, "curp {curp:.0} vs orig {orig:.0}");
    }
}
