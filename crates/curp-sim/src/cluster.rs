//! The RAMCloud-class simulated cluster (Figures 5, 6, 7 and 12).
//!
//! Calibration targets come straight from §5.1: small unreplicated writes
//! ≈ 6.9 µs, CURP (f=3) ≈ 7.3 µs, synchronous 3-way replication ≈ 13.8 µs,
//! single-server CURP throughput ≈ 4× the synchronous baseline with masters
//! bottlenecked on a dispatch thread. The model prices four things:
//!
//! * one-way network delay — the InfiniBand profile (~2.2 µs, thin tail);
//! * a per-message *dispatch* cost at every server (the RAMCloud dispatch
//!   thread), which serializes and therefore bounds throughput;
//! * a per-message client-side cost (NIC/doorbell handling) — this is what
//!   makes CURP f=3 slightly slower than unreplicated (more responses to
//!   process), the paper's 0.4 µs;
//! * a per-operation execution cost on the master's worker threads
//!   (parallel, so it adds latency but not a throughput ceiling).

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use curp_core::client::{ClientConfig, CurpClient, PipelineConfig, PipelinedClient};
use curp_core::coordinator::{Coordinator, CoordinatorHandler};
use curp_core::master::MasterConfig;
use curp_core::server::{CurpServer, ServerHandler};
use curp_proto::cluster::HashRange;
use curp_proto::op::Op;
use curp_proto::types::{MasterId, ServerId};
use curp_storage::StoreConfig;
use curp_transport::latency::NetProfile;
use curp_transport::mem::{MemNetwork, ServerSpec};
use curp_witness::cache::CacheConfig;
use curp_workload::open_loop::{run_open_loop, OpenLoopConfig, OpenLoopReport};
use curp_workload::{LatencyRecorder, Workload, WorkloadOp};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::time::{to_virtual_ns, vns, vus, MODEL_SCALE};

/// Which of the paper's four systems to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// CURP: speculative masters + witnesses (the contribution).
    Curp,
    /// "Original RAMCloud": synchronous replication before every response.
    Original,
    /// Async replication: masters respond before syncing, clients complete
    /// without witnesses — fast but *not* durable (Figure 6's upper bound).
    Async,
    /// No replication at all.
    Unreplicated,
}

/// Calibrated model constants (virtual nanoseconds).
#[derive(Debug, Clone)]
pub struct RamcloudParams {
    /// Replication / witness factor `f`.
    pub f: usize,
    /// Master dispatch cost per message.
    pub master_dispatch_ns: u64,
    /// Backup/witness dispatch cost per message.
    pub server_dispatch_ns: u64,
    /// Client per-message cost.
    pub client_dispatch_ns: u64,
    /// Master worker execution cost per operation.
    pub exec_ns: u64,
    /// Sync batch size (Figure 12 sweeps this).
    pub batch_size: usize,
    /// Idle flush interval for the background syncer (virtual ns).
    pub sync_interval_ns: u64,
    /// Enable the §4.4 hot-key preemptive sync heuristic.
    pub hotkey_sync: bool,
    /// Host witnesses on their own `f` servers instead of co-hosting them
    /// with the backups (the default, as Figure 2's co-hosting allows).
    /// Separate hosts make witness-only failures observable: crashing a
    /// witness then leaves every backup reachable, isolating the §4.4
    /// record-failure → sync fallback.
    pub separate_witnesses: bool,
    /// Role-less servers kept in reserve. One is enough for master-recovery
    /// churn; elastic scale-out ([`curp_core::coordinator::Autoscaler`])
    /// consumes one spare per split, so a ramp to `n` partitions from one
    /// needs `n - 1`. Spares are modeled with a master's dispatch cost —
    /// that is the role they take when promoted — and carry no traffic
    /// until then, so they leave the §5.1 calibration untouched.
    pub spares: usize,
    /// RNG seed for the network latency model.
    pub seed: u64,
    /// When set, every backup role runs on the larger-than-memory
    /// [`curp_storage::TieredStore`] rooted under this directory, tuned
    /// aggressively (1 KiB memtable budget, merge threshold 2) so even
    /// short simulated workloads spill to sorted runs and exercise the
    /// compaction path. `None` keeps the in-memory engine.
    pub tiered: Option<std::path::PathBuf>,
}

impl RamcloudParams {
    /// Defaults calibrated against Table 1 / §5.1.
    pub fn new(f: usize) -> Self {
        RamcloudParams {
            f,
            master_dispatch_ns: 600,
            server_dispatch_ns: 300,
            client_dispatch_ns: 55,
            exec_ns: 900,
            batch_size: 50,
            sync_interval_ns: 20_000, // 20 µs idle flush
            hotkey_sync: true,
            separate_witnesses: false,
            spares: 1,
            seed: 0xCB5B_F00D,
            tiered: None,
        }
    }
}

/// Output of a closed-loop run.
#[derive(Debug)]
pub struct RunResult {
    /// Per-operation latencies (write ops only unless noted).
    pub writes: LatencyRecorder,
    /// Read latencies (empty for write-only workloads).
    pub reads: LatencyRecorder,
    /// Completed operations per virtual second.
    pub throughput_ops_per_sec: f64,
    /// Total operations completed.
    pub ops: u64,
}

const COORD: ServerId = ServerId(9_999);

/// A simulated RAMCloud-class cluster.
pub struct SimCluster {
    /// The underlying network (exposed for fault injection in tests).
    pub net: MemNetwork,
    /// The coordinator (exposed for recovery orchestration in tests).
    pub coord: Arc<Coordinator>,
    /// All servers: the partition masters first, then the f replica servers
    /// (co-hosted backup + witness), then [`RamcloudParams::spares`] spares.
    pub servers: Vec<Arc<CurpServer>>,
    /// The first partition's master id.
    pub master_id: MasterId,
    /// Every partition's master id, in hash-range order.
    pub master_ids: Vec<MasterId>,
    mode: Mode,
    params: RamcloudParams,
    partitions: usize,
    /// Root of the per-server data directories when built durable
    /// ([`SimCluster::build_durable`]); `None` for a memory-only cluster.
    durable_root: Option<PathBuf>,
}

impl SimCluster {
    /// Builds a one-partition cluster in the given mode.
    pub async fn build(mode: Mode, params: RamcloudParams) -> SimCluster {
        Self::build_partitioned(mode, params, 1).await
    }

    /// Builds a cluster whose key-hash space is split evenly across
    /// `partitions` masters (`ServerId(1..=partitions)`, each with its own
    /// dispatch thread). The `f` replica servers co-host backup and witness
    /// instances for *every* partition, as the paper's Figure 2 co-hosting
    /// allows.
    pub async fn build_partitioned(
        mode: Mode,
        params: RamcloudParams,
        partitions: usize,
    ) -> SimCluster {
        Self::build_inner(mode, params, partitions, None).await
    }

    /// Builds a **durable** cluster: every server is a
    /// [`CurpServer::new_durable`] rooted at `root/s<id>`, so backups
    /// write-ahead-log sync rounds to per-master AOFs and witnesses journal
    /// every record before acknowledging. Pair with
    /// [`power_loss_restart`](Self::power_loss_restart) for the §5.4
    /// whole-cluster crash scenario.
    pub async fn build_durable(
        mode: Mode,
        params: RamcloudParams,
        partitions: usize,
        root: &Path,
    ) -> SimCluster {
        Self::build_inner(mode, params, partitions, Some(root.to_path_buf())).await
    }

    async fn build_inner(
        mode: Mode,
        params: RamcloudParams,
        partitions: usize,
        durable_root: Option<PathBuf>,
    ) -> SimCluster {
        assert!(partitions >= 1);
        let f = match mode {
            Mode::Unreplicated => 0,
            _ => params.f,
        };
        let net = MemNetwork::new(params.seed);
        net.set_default_latency(Arc::new(NetProfile::Infiniband.model().scaled(MODEL_SCALE)));
        net.set_rpc_timeout(vus(5_000));

        let master_cfg = MasterConfig {
            batch_size: params.batch_size,
            sync_interval: vns(params.sync_interval_ns),
            exec_cost: vns(params.exec_ns),
            hotkey_sync: params.hotkey_sync && mode == Mode::Curp,
            hotkey_window: params.batch_size as u64,
            sync_retry_limit: 10,
            sync_retry_backoff: vus(100),
            sync_every_op: mode == Mode::Original,
            sync_coalesce: Duration::ZERO,
            sync_workers: 4,
            sync_group_commit: false,
            ..MasterConfig::default()
        };
        let net_for_factory = net.clone();
        // On a durable cluster the coordinator write-ahead-logs every
        // orchestration plan (recovery, migration) to an intent log under
        // the same root, so a coordinator kill mid-plan can cold-boot and
        // resume — see `CoordinatorCrash` in `nemesis.rs`.
        let coord = match &durable_root {
            Some(root) => {
                std::fs::create_dir_all(root).expect("create durable root");
                Coordinator::new_durable(
                    Box::new(move |id| net_for_factory.client(id)),
                    master_cfg,
                    u64::MAX / 4, // leases effectively never expire inside a run
                    &root.join("coordinator.intent"),
                )
                .expect("open coordinator intent log")
            }
            None => Coordinator::new(
                Box::new(move |id| net_for_factory.client(id)),
                master_cfg,
                u64::MAX / 4,
            ),
        };
        net.add_simple_server(COORD, Arc::new(CoordinatorHandler(Arc::clone(&coord))));

        // Masters on s1..=sN with their dispatch threads; f replica servers
        // hosting backup + witness (co-hosted, Figure 2) — or, with
        // `separate_witnesses`, f backup servers followed by f witness-only
        // servers; `params.spares` spares for recovery and scale-out.
        let wit_extra = if params.separate_witnesses && mode == Mode::Curp { params.f } else { 0 };
        let mut servers = Vec::new();
        for i in 1..=(partitions + f + wit_extra + params.spares.max(1)) {
            let s = Self::boot_server(i, durable_root.as_deref(), params.tiered.as_deref());
            let dispatch = Self::dispatch_cost(i, partitions, f + wit_extra, &params);
            net.add_server(
                s.id(),
                Arc::new(ServerHandler(Arc::clone(&s))),
                ServerSpec { dispatch_cost: dispatch },
            );
            coord.register_server(Arc::clone(&s));
            servers.push(s);
        }
        let backups: Vec<ServerId> =
            (partitions + 1..partitions + 1 + f).map(|i| ServerId(i as u64)).collect();
        let witnesses: Vec<ServerId> = if mode == Mode::Curp {
            if wit_extra > 0 {
                (partitions + 1 + f..partitions + 1 + f + wit_extra)
                    .map(|i| ServerId(i as u64))
                    .collect()
            } else {
                backups.clone()
            }
        } else {
            Vec::new()
        };

        // Even split of the hash space: partition p owns [p*stride,
        // (p+1)*stride), with the last range running to u64::MAX (inclusive
        // of the top hash, see HashRange).
        let stride = u64::MAX / partitions as u64;
        let mut master_ids = Vec::with_capacity(partitions);
        for p in 0..partitions {
            let range = HashRange {
                start: p as u64 * stride,
                end: if p + 1 == partitions { u64::MAX } else { (p as u64 + 1) * stride },
            };
            let id = coord
                .create_partition(ServerId(p as u64 + 1), backups.clone(), witnesses.clone(), range)
                .await
                .expect("create partition");
            master_ids.push(id);
        }
        let master_id = master_ids[0];
        SimCluster {
            net,
            coord,
            servers,
            master_id,
            master_ids,
            mode,
            params,
            partitions,
            durable_root,
        }
    }

    /// Boots (or reboots) server `i`'s process object: durable servers
    /// reopen their data directory, which replays the backup AOFs and the
    /// witness journal. With `tiered` set, the backup role's replicas run
    /// on the larger-than-memory engine rooted under that directory.
    fn boot_server(i: usize, root: Option<&Path>, tiered: Option<&Path>) -> Arc<CurpServer> {
        let id = ServerId(i as u64);
        let store = match tiered {
            Some(tier_root) => {
                let mut cfg = StoreConfig::tiered(1, tier_root);
                if let Some(tier) = cfg.tier.as_mut() {
                    // Spill even on short simulated workloads.
                    tier.memtable_budget = 1024;
                    tier.merge_threshold = 2;
                }
                cfg
            }
            None => StoreConfig::memory(1),
        };
        match root {
            Some(root) => CurpServer::new_durable_with(
                id,
                CacheConfig::default(),
                &root.join(format!("s{i}")),
                store,
            )
            .unwrap_or_else(|e| panic!("boot durable server s{i}: {e}")),
            None => CurpServer::new_with(id, CacheConfig::default(), store),
        }
    }

    /// Spares (beyond the `replicas` backup/witness block) are priced like
    /// masters: promotion — churn recovery or an autoscaler split — is the
    /// only way they ever see traffic, and it hands them a master's
    /// dispatch thread.
    fn dispatch_cost(
        i: usize,
        partitions: usize,
        replicas: usize,
        params: &RamcloudParams,
    ) -> Duration {
        if i <= partitions || i > partitions + replicas {
            vns(params.master_dispatch_ns)
        } else {
            vns(params.server_dispatch_ns)
        }
    }

    /// Size of the backup/witness server block laid out after the masters.
    fn replica_block(&self) -> usize {
        self.f() + if self.witnesses_separate() { self.f() } else { 0 }
    }

    /// The power-loss nemesis (§5.4's crash model, applied to the whole
    /// cluster at once): every server process dies instantly — in-flight
    /// requests vanish, in-memory state is gone — then each is cold-booted
    /// from its on-disk state (backup AOFs + witness journals) and the
    /// coordinator rebuilds every partition via
    /// `Coordinator::restart_cluster`. Requires a cluster built with
    /// [`build_durable`](Self::build_durable).
    ///
    /// Safe to run under concurrent load: clients see timeouts and retries
    /// while the power is out, and complete (or report failure) once the
    /// restarted cluster publishes its new partition map. Returns the new
    /// master ids in partition order and updates `master_id(s)`.
    pub async fn power_loss_restart(&mut self) -> Result<Vec<MasterId>, String> {
        let root = self
            .durable_root
            .clone()
            .ok_or_else(|| "power_loss_restart requires build_durable".to_string())?;
        // Lights out. Sealing the old masters models the process death of
        // their background syncer tasks (a real power loss stops them; the
        // sim's tasks would otherwise keep running off the old Arcs).
        for s in &self.servers {
            self.net.crash(s.id());
            s.seal_master();
        }
        // Cold boot: fresh process objects over the same directories. The
        // durable constructor replays each server's AOFs and journal;
        // re-registering the handler clears the crashed flag (a machine
        // that powered back on).
        let mut fresh = Vec::with_capacity(self.servers.len());
        for idx in 0..self.servers.len() {
            let i = idx + 1;
            let s = Self::boot_server(i, Some(root.as_path()), self.params.tiered.as_deref());
            let dispatch =
                Self::dispatch_cost(i, self.partitions, self.replica_block(), &self.params);
            self.net.add_server(
                s.id(),
                Arc::new(ServerHandler(Arc::clone(&s))),
                ServerSpec { dispatch_cost: dispatch },
            );
            self.coord.register_server(Arc::clone(&s));
            fresh.push(s);
        }
        self.servers = fresh;
        // The coordinator (the consensus-backed config store the paper
        // assumes) survives the outage and re-anchors every partition —
        // but the outage may have caught it mid-plan, so it first re-reads
        // its intent log from disk (the same cold-boot path a coordinator
        // process restart takes) and `restart_cluster` resumes whatever was
        // in flight after the per-partition recoveries.
        self.coord.reload_intent().map_err(|e| format!("reload intent log: {e}"))?;
        let new_ids = self.coord.restart_cluster().await?;
        self.master_ids = new_ids.clone();
        self.master_id = new_ids[0];
        Ok(new_ids)
    }

    /// Whether this cluster persists server state on disk.
    pub fn is_durable(&self) -> bool {
        self.durable_root.is_some()
    }

    /// Simulates a coordinator process kill + cold boot. The *kill* half is
    /// the caller's job — drop the in-flight orchestration future (e.g. by
    /// racing it against a timer in `tokio::select!`); this is the *boot*
    /// half: discard the in-memory plan mirror and re-read the intent log
    /// from disk, exactly like a restarted coordinator process. Returns the
    /// number of open (interrupted) plans found on disk; drive them with
    /// [`Coordinator::resume_plans`]. Requires [`build_durable`](Self::build_durable).
    pub fn coordinator_cold_boot(&self) -> Result<usize, String> {
        if self.durable_root.is_none() {
            return Err("coordinator_cold_boot requires build_durable".into());
        }
        self.coord.reload_intent().map_err(|e| format!("reload intent log: {e}"))
    }

    fn f(&self) -> usize {
        match self.mode {
            Mode::Unreplicated => 0,
            _ => self.params.f,
        }
    }

    fn witnesses_separate(&self) -> bool {
        self.params.separate_witnesses && self.mode == Mode::Curp
    }

    /// Servers currently hosting a live master, in partition order.
    pub fn master_servers(&self) -> Vec<ServerId> {
        self.coord.config().partitions.iter().map(|p| p.master).collect()
    }

    /// The `f` backup servers (static layout: right after the masters).
    pub fn backup_servers(&self) -> Vec<ServerId> {
        (self.partitions + 1..self.partitions + 1 + self.f()).map(|i| ServerId(i as u64)).collect()
    }

    /// The witness servers: the backup servers when co-hosted (default), a
    /// separate block of `f` servers under
    /// [`RamcloudParams::separate_witnesses`].
    pub fn witness_servers(&self) -> Vec<ServerId> {
        if self.mode != Mode::Curp {
            return Vec::new();
        }
        let start = if self.witnesses_separate() {
            self.partitions + 1 + self.f()
        } else {
            self.partitions + 1
        };
        (start..start + self.f()).map(|i| ServerId(i as u64)).collect()
    }

    /// A registered, reachable server holding no current role — the
    /// recovery target [`churn_master`](Self::churn_master) uses.
    pub fn spare_server(&self) -> Option<ServerId> {
        let cfg = self.coord.config();
        self.servers.iter().map(|s| s.id()).find(|id| {
            !self.net.is_crashed(*id)
                && cfg.partitions.iter().all(|p| {
                    p.master != *id && !p.backups.contains(id) && !p.witnesses.contains(id)
                })
        })
    }

    /// The server process object for `id`, if it exists.
    pub fn server(&self, id: ServerId) -> Option<&Arc<CurpServer>> {
        self.servers.iter().find(|s| s.id() == id)
    }

    /// Crashes one server: its NIC goes dark (requests to it time out) and
    /// any master it hosts stops its background syncer — the sim-level
    /// stand-in for the process dying.
    pub fn crash_server(&self, id: ServerId) {
        self.net.crash(id);
        if let Some(s) = self.server(id) {
            s.seal_master();
        }
    }

    /// Restarts a crashed server. On a durable cluster this is a **cold**
    /// restart: a fresh process object is booted from the server's data
    /// directory alone (AOF + witness-journal replay), exactly like one
    /// machine of [`power_loss_restart`](Self::power_loss_restart). On a
    /// memory-only cluster there is no disk to reboot from, so the restart
    /// is warm (state intact, as after a network outage).
    ///
    /// Refuses to restart a server currently listed as a partition's master:
    /// a master's speculative (unsynced) state cannot be cold-booted — that
    /// incarnation must go through
    /// [`Coordinator::recover_master`] instead (see
    /// [`churn_master`](Self::churn_master)).
    pub fn restart_server(&mut self, id: ServerId) -> Result<(), String> {
        if self.coord.config().partitions.iter().any(|p| p.master == id) {
            return Err(format!("s{} hosts a live master; use churn_master", id.0));
        }
        match self.durable_root.clone() {
            Some(root) => {
                let i = id.0 as usize;
                let s = Self::boot_server(i, Some(root.as_path()), self.params.tiered.as_deref());
                let dispatch =
                    Self::dispatch_cost(i, self.partitions, self.replica_block(), &self.params);
                // add_server installs a fresh (non-crashed) entry.
                self.net.add_server(
                    id,
                    Arc::new(ServerHandler(Arc::clone(&s))),
                    ServerSpec { dispatch_cost: dispatch },
                );
                self.coord.register_server(Arc::clone(&s));
                match self.servers.iter_mut().find(|srv| srv.id() == id) {
                    Some(slot) => *slot = s,
                    None => self.servers.push(s),
                }
            }
            None => self.net.restart(id),
        }
        Ok(())
    }

    /// Master recovery churn: crashes the partition's master host and
    /// recovers the partition onto the current spare (§3.3/§4.6), then
    /// brings the old host back so it becomes the next spare. Retries the
    /// recovery while concurrent faults (a crashed backup, a partitioned
    /// witness) keep it from completing. Returns the new master id.
    pub async fn churn_master(&mut self, partition: usize) -> Result<MasterId, String> {
        let part = self
            .coord
            .config()
            .partitions
            .get(partition)
            .cloned()
            .ok_or_else(|| format!("no partition {partition}"))?;
        let spare = self.spare_server().ok_or("no spare server available")?;
        self.crash_server(part.master);
        let mut last_err = String::new();
        for _ in 0..40 {
            match self.coord.recover_master(part.master_id, spare).await {
                Ok(new_id) => {
                    self.master_ids[partition] = new_id;
                    if partition == 0 {
                        self.master_id = new_id;
                    }
                    // The deposed host rejoins as a role-less server (the
                    // next spare). Cold on durable clusters.
                    self.restart_server(part.master)?;
                    return Ok(new_id);
                }
                Err(e) => {
                    last_err = e;
                    tokio::time::sleep(vus(250)).await;
                }
            }
        }
        Err(format!("recover_master kept failing: {last_err}"))
    }

    /// Creates a client. Client ids start at 100 and each gets its own
    /// dispatch model (per-message NIC cost).
    pub async fn client(&self, index: usize) -> Arc<CurpClient> {
        let id = ServerId(100 + index as u64);
        // Clients are registered as (handler-less) servers only to give them
        // a dispatch cost; they never receive requests.
        self.net.add_server(
            id,
            Arc::new(|_from: ServerId, _req| async move {
                curp_proto::message::Response::Retry { reason: "client".into() }
            }),
            ServerSpec { dispatch_cost: vns(self.params.client_dispatch_ns) },
        );
        let cfg = ClientConfig {
            record_witnesses: self.mode == Mode::Curp,
            max_retries: 50,
            retry_backoff: vus(50),
            retry_backoff_max: vus(800),
        };
        Arc::new(
            CurpClient::connect(self.net.client(id), COORD, cfg).await.expect("client connect"),
        )
    }

    /// Runs `clients` closed-loop clients for `duration` of virtual time,
    /// each drawing operations from its own copy of `make_workload()`.
    pub async fn run_closed_loop(
        &self,
        clients: usize,
        duration: Duration,
        make_workload: impl Fn(usize) -> Workload,
    ) -> RunResult {
        let mut handles = Vec::new();
        for c in 0..clients {
            let client = self.client(c).await;
            let mut workload = make_workload(c);
            let seed = self.params.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            handles.push(tokio::spawn(async move {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut writes = LatencyRecorder::new();
                let mut reads = LatencyRecorder::new();
                let deadline = tokio::time::Instant::now() + duration;
                let mut ops = 0u64;
                while tokio::time::Instant::now() < deadline {
                    let op = workload.next_op(&mut rng);
                    let t0 = tokio::time::Instant::now();
                    match op {
                        WorkloadOp::Update { key, value } => {
                            client.update(Op::Put { key, value }).await.expect("update failed");
                            writes.record_ns(to_virtual_ns(t0.elapsed()));
                        }
                        WorkloadOp::Read { key } => {
                            client.read(Op::Get { key }).await.expect("read failed");
                            reads.record_ns(to_virtual_ns(t0.elapsed()));
                        }
                    }
                    ops += 1;
                }
                (writes, reads, ops)
            }));
        }
        let mut writes = LatencyRecorder::new();
        let mut reads = LatencyRecorder::new();
        let mut total_ops = 0;
        for h in handles {
            let (w, r, ops) = h.await.expect("client task");
            writes.merge(&w);
            reads.merge(&r);
            total_ops += ops;
        }
        let secs = to_virtual_ns(duration) as f64 / 1e9;
        RunResult { writes, reads, throughput_ops_per_sec: total_ops as f64 / secs, ops: total_ops }
    }

    /// Creates a pipelined (windowed, batching) client over this cluster.
    pub async fn pipelined_client(
        &self,
        index: usize,
        pcfg: PipelineConfig,
    ) -> Arc<PipelinedClient> {
        PipelinedClient::new(self.client(index).await, pcfg)
    }

    /// Issues `ops` uniform 100 B writes one at a time (one op in flight)
    /// and returns the elapsed **virtual** time — the serial baseline the
    /// pipelined path is measured against.
    pub async fn time_serial_updates(&self, ops: u64, keys: u64) -> Duration {
        let client = self.client(0).await;
        let mut workload = Workload::uniform_writes(keys);
        let mut rng = StdRng::seed_from_u64(self.params.seed ^ 0x5E51A1);
        let t0 = tokio::time::Instant::now();
        for _ in 0..ops {
            let WorkloadOp::Update { key, value } = workload.next_op(&mut rng) else {
                unreachable!("write-only workload")
            };
            client.update(Op::Put { key, value }).await.expect("serial update");
        }
        t0.elapsed()
    }

    /// Issues the same uniform write stream through a pipelined client
    /// (window/batch per `pcfg`) and returns the elapsed **virtual** time
    /// from first submission to last completion.
    pub async fn time_pipelined_updates(
        &self,
        ops: u64,
        keys: u64,
        pcfg: PipelineConfig,
    ) -> Duration {
        let pipe = self.pipelined_client(0, pcfg).await;
        let mut workload = Workload::uniform_writes(keys);
        let mut rng = StdRng::seed_from_u64(self.params.seed ^ 0x5E51A1);
        let t0 = tokio::time::Instant::now();
        let mut completions = Vec::with_capacity(ops as usize);
        for _ in 0..ops {
            let WorkloadOp::Update { key, value } = workload.next_op(&mut rng) else {
                unreachable!("write-only workload")
            };
            // submit applies window backpressure; completions resolve later.
            completions.push(pipe.submit(Op::Put { key, value }).await.expect("submit"));
        }
        for c in completions {
            c.await.expect("pipelined update");
        }
        t0.elapsed()
    }

    /// Runs the open-loop driver against this cluster through a pipelined
    /// client: operations arrive every `interval_vns` virtual nanoseconds
    /// whether or not earlier ones completed, and latency is measured from
    /// scheduled arrival (queueing included). The whole report — latencies
    /// *and* `elapsed` — is converted back to protocol-scale (virtual)
    /// nanoseconds before returning.
    pub async fn run_open_loop(
        &self,
        interval_vns: u64,
        ops: u64,
        pcfg: PipelineConfig,
        workload: Workload,
    ) -> OpenLoopReport {
        let pipe = self.pipelined_client(0, pcfg).await;
        self.run_open_loop_on(&pipe, interval_vns, ops, workload, 0).await
    }

    /// Like [`run_open_loop`](Self::run_open_loop), but drives an **existing**
    /// pipelined client instead of creating one. This is the saturation-ramp
    /// building block: phases of offered load share one client handle, so
    /// its cached partition map, per-master pipes and RIFL lease live
    /// through whatever reconfiguration (autoscaler splits, churn) happens
    /// between or during phases. `salt` decorrelates the workload RNG
    /// across phases.
    pub async fn run_open_loop_on(
        &self,
        pipe: &Arc<PipelinedClient>,
        interval_vns: u64,
        ops: u64,
        mut workload: Workload,
        salt: u64,
    ) -> OpenLoopReport {
        let pipe = Arc::clone(pipe);
        let mut rng = StdRng::seed_from_u64(self.params.seed ^ 0x09E7 ^ salt);
        let cfg = OpenLoopConfig { interval: vns(interval_vns), ops };
        let mut report = run_open_loop(&mut workload, &mut rng, cfg, move |op| {
            let pipe = Arc::clone(&pipe);
            async move {
                let submitted = match op {
                    WorkloadOp::Update { key, value } => pipe.submit(Op::Put { key, value }).await,
                    WorkloadOp::Read { key } => pipe.submit(Op::Get { key }).await,
                };
                match submitted {
                    Ok(completion) => completion.await.is_ok(),
                    Err(_) => false,
                }
            }
        })
        .await;
        // Everything was measured in inflated tokio time (1 virtual ns = 1
        // tokio ms); scale the whole report back to virtual nanoseconds so
        // its fields stay unit-consistent — `throughput(Duration::from_secs(1))`
        // then yields ops per virtual second directly.
        report.latency = report.latency.scaled_down(MODEL_SCALE as u64);
        report.elapsed = Duration::from_nanos(to_virtual_ns(report.elapsed));
        report
    }

    /// Measures sequential write latency from a single client (Figure 5):
    /// `samples` back-to-back 100 B writes to random keys.
    pub async fn measure_write_latency(&self, samples: usize, keys: u64) -> LatencyRecorder {
        let client = self.client(0).await;
        let mut workload = Workload::uniform_writes(keys);
        let mut rng = StdRng::seed_from_u64(self.params.seed ^ 0xFEED);
        let mut rec = LatencyRecorder::new();
        for _ in 0..samples {
            let op = loop {
                match workload.next_op(&mut rng) {
                    WorkloadOp::Update { key, value } => break Op::Put { key, value },
                    WorkloadOp::Read { .. } => continue,
                }
            };
            let t0 = tokio::time::Instant::now();
            client.update(op).await.expect("write failed");
            rec.record_ns(to_virtual_ns(t0.elapsed()));
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::run_sim;

    fn median_us(mode: Mode, f: usize) -> f64 {
        run_sim(async move {
            let cluster = SimCluster::build(mode, RamcloudParams::new(f)).await;
            let mut rec = cluster.measure_write_latency(300, 100_000).await;
            rec.median_us()
        })
    }

    #[test]
    fn unreplicated_latency_matches_paper_scale() {
        let m = median_us(Mode::Unreplicated, 0);
        // §5.1: 6.9 µs.
        assert!((6.0..8.0).contains(&m), "unreplicated median {m:.2} µs");
    }

    #[test]
    fn curp_f3_is_close_to_unreplicated() {
        let unrep = median_us(Mode::Unreplicated, 0);
        let curp = median_us(Mode::Curp, 3);
        // §5.1: 7.3 vs 6.9 µs — within ~10%.
        let overhead = curp - unrep;
        assert!((0.0..1.5).contains(&overhead), "CURP {curp:.2} vs unreplicated {unrep:.2}");
    }

    #[test]
    fn original_is_roughly_twice_curp() {
        let curp = median_us(Mode::Curp, 3);
        let orig = median_us(Mode::Original, 3);
        let ratio = orig / curp;
        // §5.1: "CURP cuts the median write latencies in half" (13.8 / 7.3 ≈ 1.9).
        assert!((1.5..2.6).contains(&ratio), "orig {orig:.2} / curp {curp:.2} = {ratio:.2}");
    }

    #[test]
    fn pipelined_client_at_least_doubles_serial_throughput() {
        // The acceptance bar for the pipelined/batched client: the same 300
        // uniform writes finish in less than half the virtual time of the
        // one-op-in-flight client (in practice far less — a window of 16
        // overlaps sixteen round trips).
        let (serial, pipelined) = run_sim(async {
            let cluster = SimCluster::build(Mode::Curp, RamcloudParams::new(3)).await;
            let serial = cluster.time_serial_updates(300, 100_000).await;
            let pipelined =
                cluster.time_pipelined_updates(300, 100_000, PipelineConfig::default()).await;
            (serial, pipelined)
        });
        let speedup = serial.as_secs_f64() / pipelined.as_secs_f64();
        assert!(
            speedup >= 2.0,
            "pipelined speedup only {speedup:.2}x ({serial:?} vs {pipelined:?})"
        );
    }

    #[test]
    fn pipelined_client_drives_all_partitions_concurrently() {
        run_sim(async {
            let cluster =
                SimCluster::build_partitioned(Mode::Curp, RamcloudParams::new(3), 4).await;
            assert_eq!(cluster.master_ids.len(), 4);
            let pipe = cluster.pipelined_client(0, PipelineConfig::default()).await;
            // Uniform keys hash across the whole space, so one client's
            // stream fans out over every master.
            let mut workload = Workload::uniform_writes(10_000);
            let mut rng = StdRng::seed_from_u64(7);
            let mut completions = Vec::new();
            for _ in 0..200 {
                let WorkloadOp::Update { key, value } = workload.next_op(&mut rng) else {
                    unreachable!()
                };
                completions.push(pipe.submit(Op::Put { key, value }).await.expect("submit"));
            }
            for c in completions {
                c.await.expect("pipelined update");
            }
            for m in 1..=4u64 {
                let hits = cluster
                    .net
                    .stats(ServerId(m))
                    .unwrap()
                    .requests_in
                    .load(std::sync::atomic::Ordering::Relaxed);
                assert!(hits > 0, "master s{m} never saw a request");
            }
        });
    }

    #[test]
    fn pipelined_throughput_recovers_after_split() {
        use std::sync::atomic::Ordering;

        // The satellite regression for online splits: a pipelined client
        // whose cached map predates a partition split must get its moved
        // range's throughput *back to pipelined rates* — the NotOwner
        // responses redirect ops onto the new master's pipe rather than
        // demoting the range to the serial retry loop forever.
        run_sim(async {
            let cluster = SimCluster::build(Mode::Curp, RamcloudParams::new(3)).await;
            // Serial baseline on the intact single-partition map.
            let serial = cluster.time_serial_updates(150, 100_000).await;

            let pipe = cluster.pipelined_client(1, PipelineConfig::default()).await;
            // Warm the pipe so its cached config is stale when the split lands.
            let mut workload = Workload::uniform_writes(100_000);
            let mut rng = StdRng::seed_from_u64(42);
            let mut completions = Vec::new();
            for _ in 0..50 {
                let WorkloadOp::Update { key, value } = workload.next_op(&mut rng) else {
                    unreachable!()
                };
                completions.push(pipe.submit(Op::Put { key, value }).await.expect("submit"));
            }
            for c in completions {
                c.await.expect("warmup update");
            }

            // Split the partition at the range midpoint onto the spare.
            let part = cluster.coord.config().partitions[0].clone();
            let spare = cluster.spare_server().expect("fresh cluster has a spare");
            let version_before = cluster.coord.config().version;
            let mut split = Err("never attempted".to_string());
            for _ in 0..20 {
                split = cluster
                    .coord
                    .migrate(
                        part.master_id,
                        u64::MAX / 2,
                        spare,
                        part.backups.clone(),
                        part.witnesses.clone(),
                    )
                    .await;
                if split.is_ok() {
                    break;
                }
                tokio::time::sleep(vus(50)).await;
            }
            let new_master = split.expect("split failed");
            assert_ne!(new_master, part.master_id);
            assert!(cluster.coord.config().version > version_before, "map version must advance");

            // The same write stream through the SAME (stale-mapped) pipe:
            // the first flush to the old master draws NotOwner for the
            // moved half and the ops must hop pipes, not go serial.
            let t0 = tokio::time::Instant::now();
            let mut completions = Vec::new();
            for _ in 0..150 {
                let WorkloadOp::Update { key, value } = workload.next_op(&mut rng) else {
                    unreachable!()
                };
                completions.push(pipe.submit(Op::Put { key, value }).await.expect("submit"));
            }
            for c in completions {
                c.await.expect("post-split update");
            }
            let post = t0.elapsed();

            let speedup = serial.as_secs_f64() / post.as_secs_f64();
            assert!(
                speedup >= 2.0,
                "post-split pipelined speedup only {speedup:.2}x ({serial:?} vs {post:?}) — \
                 the moved range degraded to the serial path"
            );
            // And the new master genuinely served its half.
            let hits = cluster.net.stats(spare).unwrap().requests_in.load(Ordering::Relaxed);
            assert!(hits > 0, "the split-off master never saw a request");
        });
    }

    #[test]
    fn open_loop_below_saturation_matches_closed_loop_latency() {
        run_sim(async {
            let cluster = SimCluster::build(Mode::Curp, RamcloudParams::new(3)).await;
            // ~20 µs between arrivals is far below saturation: no queueing,
            // so open-loop latency ~= the §5.1 closed-loop 7.3 µs median.
            let report = cluster
                .run_open_loop(
                    20_000,
                    200,
                    PipelineConfig::default(),
                    Workload::uniform_writes(100_000),
                )
                .await;
            assert_eq!(report.completed, 200, "failed={}", report.failed);
            let mut latency = report.latency;
            let p50_us = latency.quantile_ns(0.5) as f64 / 1_000.0;
            assert!((5.0..12.0).contains(&p50_us), "open-loop p50 {p50_us:.2} µs");
        });
    }

    #[test]
    fn open_loop_past_saturation_shows_queueing_tail() {
        run_sim(async {
            let cluster = SimCluster::build(Mode::Curp, RamcloudParams::new(3)).await;
            // 1 µs between arrivals (1M ops/s offered) pushes the
            // dispatch-bound master well past its unloaded operating point:
            // ops queue behind the window, and because open-loop latency is
            // measured from *scheduled arrival*, the queueing delay shows up
            // in the median — several times the ~7.3 µs unloaded latency a
            // closed-loop driver would keep reporting.
            let report = cluster
                .run_open_loop(
                    1_000,
                    300,
                    PipelineConfig { window: 32, max_batch: 16 },
                    Workload::uniform_writes(100_000),
                )
                .await;
            assert_eq!(report.completed, 300, "failed={}", report.failed);
            let mut latency = report.latency;
            let s = latency.summary();
            assert!(s.p50_us > 30.0, "expected queueing delay in the median: {s:?}");
            assert!(s.p90_us >= s.p50_us && s.max_us >= s.p90_us);
        });
    }

    #[test]
    fn power_loss_restart_recovers_synced_and_unsynced_writes() {
        use bytes::Bytes;
        use curp_proto::op::OpResult;

        run_sim(async {
            let dir = crate::tempdir::TempDir::new("curp-sim-powerloss").unwrap();
            // Lazy syncing: the speculative tail stays witness-only, so the
            // restart must recover one write from backup AOFs and the other
            // from witness journals.
            let mut params = RamcloudParams::new(3);
            params.batch_size = 10_000;
            params.sync_interval_ns = u64::MAX / 2048;
            let mut cluster = SimCluster::build_durable(Mode::Curp, params, 1, dir.path()).await;
            let client = cluster.client(0).await;

            let put = |k: &str, v: &str| Op::Put {
                key: Bytes::from(k.to_owned()),
                value: Bytes::from(v.to_owned()),
            };
            client.update(put("synced-key", "on-disk")).await.unwrap();
            // A read forces the master to sync its pending tail (§3.2.3),
            // pushing "synced-key" into the backups' fsynced AOFs.
            client.read(Op::Get { key: Bytes::from("synced-key") }).await.unwrap();
            // These complete on the 1-RTT fast path: durable only in the
            // witness journals.
            let r =
                client.update(Op::Incr { key: Bytes::from("counter"), delta: 7 }).await.unwrap();
            assert_eq!(r, OpResult::Counter(7));
            client.update(put("spec-key", "journal-only")).await.unwrap();
            assert!(
                cluster.servers[1].backup().next_seq(cluster.master_id).unwrap_or(0) < 3,
                "speculative tail unexpectedly synced; test would prove nothing"
            );

            let old_master = cluster.master_id;
            let new_ids = cluster.power_loss_restart().await.unwrap();
            assert_eq!(new_ids.len(), 1);
            assert_ne!(new_ids[0], old_master);

            // Every acknowledged write survived the outage.
            for (k, want) in
                [("synced-key", "on-disk"), ("spec-key", "journal-only"), ("counter", "7")]
            {
                let r = client.read(Op::Get { key: Bytes::from(k) }).await.unwrap();
                assert_eq!(
                    r,
                    OpResult::Value(Some(Bytes::from(want))),
                    "{k} lost across power loss"
                );
            }
            // Exactly-once across the outage: the RIFL table travelled with
            // the recovered state, so a *new* increment lands on 7, not 0.
            let r =
                client.update(Op::Incr { key: Bytes::from("counter"), delta: 1 }).await.unwrap();
            assert_eq!(r, OpResult::Counter(8));
        });
    }

    #[test]
    fn replica_crash_restart_preserves_fencing_epoch() {
        use bytes::Bytes;
        use curp_core::backup::SyncOutcome;
        use curp_proto::types::Epoch;

        // A replica-only crash must not lose the fencing epoch (§4.7): the
        // coordinator fences every backup *before* recovery reads any of
        // them, and a backup that cold-restarts inside that window must
        // still reject the deposed master's syncs.
        run_sim(async {
            let dir = crate::tempdir::TempDir::new("curp-sim-fence").unwrap();
            let mut params = RamcloudParams::new(3);
            params.batch_size = 2; // sync early so the replica holds entries
            let mut cluster = SimCluster::build_durable(Mode::Curp, params, 1, dir.path()).await;
            let client = cluster.client(0).await;
            for i in 0..6 {
                let op = Op::Put {
                    key: Bytes::from(format!("k{i}")),
                    value: Bytes::from("v".to_owned()),
                };
                client.update(op).await.unwrap();
            }
            // A read blocks on a full sync: the replicas now hold entries.
            client.read(Op::Get { key: Bytes::from("k0") }).await.unwrap();

            let b = cluster.backup_servers()[0];
            let mid = cluster.master_id;
            let seq_before = cluster.server(b).unwrap().backup().next_seq(mid).unwrap();
            assert!(seq_before > 0, "replica never synced; test would prove nothing");

            // Coordinator-style fence, then the backup dies and cold-boots.
            cluster.server(b).unwrap().backup().set_epoch(mid, Epoch(7));
            cluster.crash_server(b);
            cluster.restart_server(b).unwrap();

            let backup = cluster.server(b).unwrap().backup();
            assert_eq!(backup.next_seq(mid), Some(seq_before), "synced data lost in restart");
            assert!(
                matches!(backup.sync(mid, Epoch(1), &[]), SyncOutcome::Fenced { .. }),
                "zombie sync accepted: the fence did not survive the crash-restart"
            );
        });
    }

    #[test]
    fn witness_crash_forces_sync_path_until_restart() {
        use bytes::Bytes;
        use std::sync::atomic::Ordering;

        // Paper §4.4: when a witness rejects or cannot be reached, the
        // client falls back to asking the master to sync — slower, still
        // safe. Witnesses must live on their own servers here: crashing a
        // co-hosted witness would kill a backup too, and the sync path
        // itself would be dead.
        run_sim(async {
            let mut params = RamcloudParams::new(3);
            params.separate_witnesses = true;
            params.batch_size = 10_000;
            params.sync_interval_ns = u64::MAX / 2048; // no background syncs
            let mut cluster = SimCluster::build(Mode::Curp, params).await;
            assert_eq!(
                cluster
                    .backup_servers()
                    .iter()
                    .filter(|b| cluster.witness_servers().contains(b))
                    .count(),
                0,
                "separate_witnesses must disjoin the two roles"
            );
            let client = cluster.client(0).await;
            let fast = |c: &CurpClient| c.stats.fast_path.load(Ordering::Relaxed);

            client
                .update(Op::Put { key: Bytes::from("a"), value: Bytes::from("1") })
                .await
                .unwrap();
            assert_eq!(fast(&client), 1, "healthy cluster must take the 1-RTT fast path");

            let w = cluster.witness_servers()[0];
            cluster.crash_server(w);
            client
                .update(Op::Put { key: Bytes::from("b"), value: Bytes::from("2") })
                .await
                .unwrap();
            assert_eq!(fast(&client), 1, "with a witness down the fast path must not be taken");
            let synced = cluster
                .backup_servers()
                .iter()
                .map(|b| cluster.server(*b).unwrap().backup().next_seq(cluster.master_id))
                .collect::<Vec<_>>();
            assert!(
                synced.iter().all(|s| s.unwrap_or(0) >= 2),
                "the fallback op must reach the backups via sync, got {synced:?}"
            );

            // A memory cluster's restart is warm: the witness returns with
            // its records intact and the fast path resumes.
            cluster.restart_server(w).unwrap();
            client
                .update(Op::Put { key: Bytes::from("c"), value: Bytes::from("3") })
                .await
                .unwrap();
            assert_eq!(fast(&client), 2, "fast path must resume once the witness is back");
        });
    }

    #[test]
    fn churn_master_recovers_partition_onto_spare() {
        use bytes::Bytes;
        use curp_proto::op::OpResult;

        run_sim(async {
            let mut params = RamcloudParams::new(3);
            params.batch_size = 5;
            let mut cluster = SimCluster::build(Mode::Curp, params).await;
            let client = cluster.client(0).await;
            client
                .update(Op::Put { key: Bytes::from("k"), value: Bytes::from("before") })
                .await
                .unwrap();

            let old_master = cluster.master_id;
            let old_host = cluster.master_servers()[0];
            let spare = cluster.spare_server().expect("fresh cluster has a spare");
            let new_master = cluster.churn_master(0).await.expect("churn failed");
            assert_ne!(new_master, old_master);
            assert_eq!(cluster.master_id, new_master);
            assert_eq!(cluster.master_servers()[0], spare, "partition must move to the spare");
            assert_eq!(
                cluster.spare_server(),
                Some(old_host),
                "the deposed host must rejoin as the next spare"
            );

            let r = client.read(Op::Get { key: Bytes::from("k") }).await.unwrap();
            assert_eq!(r, OpResult::Value(Some(Bytes::from("before"))), "write lost in churn");
            // And the recovered master accepts new writes.
            client
                .update(Op::Put { key: Bytes::from("k"), value: Bytes::from("after") })
                .await
                .unwrap();
        });
    }

    #[test]
    fn power_loss_restart_requires_durable_build() {
        run_sim(async {
            let mut cluster = SimCluster::build(Mode::Curp, RamcloudParams::new(3)).await;
            assert!(cluster.power_loss_restart().await.is_err());
        });
    }

    #[test]
    fn closed_loop_throughput_ranks_modes_correctly() {
        // Shape check on a small run: Unreplicated >= Async >= CURP >> Original.
        let tp = |mode, f| {
            run_sim(async move {
                let cluster = SimCluster::build(mode, RamcloudParams::new(f)).await;
                let r = cluster
                    .run_closed_loop(10, vus(20_000), |_| Workload::uniform_writes(100_000))
                    .await;
                r.throughput_ops_per_sec
            })
        };
        let unrep = tp(Mode::Unreplicated, 0);
        let asy = tp(Mode::Async, 3);
        let curp = tp(Mode::Curp, 3);
        let orig = tp(Mode::Original, 3);
        assert!(unrep > asy * 0.95, "unrep {unrep:.0} vs async {asy:.0}");
        assert!(asy > curp * 0.95, "async {asy:.0} vs curp {curp:.0}");
        assert!(curp > orig * 2.0, "curp {curp:.0} vs orig {orig:.0}");
    }
}
