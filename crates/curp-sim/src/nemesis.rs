//! Composable, seed-driven nemeses for the chaos fleet.
//!
//! A [`Nemesis`] is one fault-injection episode — inject, hold, heal —
//! whose every parameter (victim, rates, durations) was drawn up front
//! from a seeded RNG by [`draw_nemesis`]. Running one against a
//! [`SimCluster`] under the paused clock is therefore a pure function of
//! (seed, cluster state): the same seed replays the identical episode,
//! byte for byte, which is what makes a failing chaos seed a one-line
//! repro instead of a flake.
//!
//! Every state change a nemesis makes is recorded in a [`ScheduleLog`]
//! with its virtual-time offset. The log's FNV-1a [`hash`](ScheduleLog::hash)
//! is the replay oracle: two runs of the same seed must produce equal
//! hashes, and `tests/chaos.rs` asserts exactly that.
//!
//! The combinators cover the paper's failure model:
//!
//! * [`SymmetricPartition`] / [`AsymmetricPartition`] — §3.1's arbitrary
//!   loss, including the nastier one-way variant (requests arrive,
//!   responses vanish);
//! * [`PacketDrop`] / [`PacketDelay`] / [`PacketDup`] — per-link loss,
//!   added delay, and duplicate delivery (RIFL's exactly-once must absorb
//!   the dup, §4.5);
//! * [`CrashRestart`] — a backup or witness host dies mid-sync and
//!   cold-boots from its own disk alone;
//! * [`WitnessLoss`] — a witness goes dark, forcing the client's §4.4
//!   record-failure → explicit-sync fallback until it returns;
//! * [`MasterChurn`] — §4.6 master recovery onto the spare, under load;
//! * [`SplitMigration`] — §3.6 online split: half of a live partition's
//!   range drains onto a spare master while load keeps arriving;
//! * [`PowerLoss`] — the §5.4 whole-cluster outage and cold restart;
//! * [`CoordinatorCrash`] — the coordinator dies *mid-plan* (inside a
//!   recovery or a migration), cold-boots from its write-ahead intent
//!   log, and must resume or cleanly abort the interrupted plan.
//!
//! The five network combinators are also *overlays*
//! ([`Nemesis::is_overlay`]): the fleet can run them concurrently with a
//! structural episode through cloned network handles
//! ([`Nemesis::run_overlay`]), so e.g. a master recovery proceeds while a
//! one-way partition is still in force. [`draw_schedule`] draws such
//! mixed schedules as a vector of indexed [`Episode`]s — all parameters
//! up front, which is what lets the shrinker re-run an arbitrary episode
//! subset without disturbing the survivors' draws.

use std::cell::RefCell;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use curp_proto::types::ServerId;
use curp_transport::latency::Fixed;
use curp_transport::mem::{FaultSpec, MemNetwork};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

use crate::cluster::SimCluster;
use crate::time::{to_virtual_ns, vns};

/// The future a nemesis episode runs as. Local (non-`Send`): the whole
/// simulation lives on one paused current-thread runtime.
pub type NemesisFuture<'a> = Pin<Box<dyn Future<Output = Result<(), String>> + 'a>>;

/// One composable fault-injection episode.
pub trait Nemesis {
    /// Stable name, used in schedule logs and repro output.
    fn name(&self) -> &'static str;

    /// Whether this nemesis only makes sense on a durable cluster (it
    /// cold-restarts servers from disk). The fleet builds the cluster
    /// durable iff any drawn nemesis needs it.
    fn needs_disk(&self) -> bool {
        false
    }

    /// Runs the episode to completion: inject, hold, heal. Implementations
    /// must leave the cluster in a servable state (all faults cleared, all
    /// crashed servers restarted) unless they return `Err`.
    fn run<'a>(
        &'a self,
        cluster: &'a mut SimCluster,
        log: &'a mut ScheduleLog,
    ) -> NemesisFuture<'a>;

    /// Whether this episode touches only network links — never server
    /// processes, disks, or the partition map. Overlay episodes may run
    /// *concurrently* with one structural episode: the fleet launches them
    /// against cloned network handles while the structural stream holds
    /// the exclusive cluster borrow.
    fn is_overlay(&self) -> bool {
        false
    }

    /// Runs an overlay episode against the network alone. `masters` is a
    /// snapshot of the master hosts at launch time (an overlay cuts and
    /// heals exactly those links, even if a concurrent churn moves the
    /// partition meanwhile) and `pool` the replica servers a victim may be
    /// drawn from. Structural nemeses return `Err` without injecting.
    fn run_overlay<'a>(
        &'a self,
        _net: &'a MemNetwork,
        _masters: Vec<ServerId>,
        _pool: Vec<ServerId>,
        _log: &'a ScheduleLog,
    ) -> NemesisFuture<'a> {
        let name = self.name();
        Box::pin(async move { Err(format!("{name} is structural; it cannot run as an overlay")) })
    }
}

// ---------------------------------------------------------------------------
// Schedule log
// ---------------------------------------------------------------------------

/// One recorded state change, stamped with its virtual-time offset from
/// the log's creation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleEvent {
    /// Virtual nanoseconds since [`ScheduleLog::start`].
    pub at_vns: u64,
    /// The nemesis that made the change.
    pub nemesis: &'static str,
    /// What changed (server ids, rates, directions — never host paths).
    pub action: String,
}

impl fmt::Display for ScheduleEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>10} vns] {:<20} {}", self.at_vns, self.nemesis, self.action)
    }
}

/// The deterministic record of everything the nemeses did to a cluster.
///
/// Timestamps come from the paused virtual clock, and actions mention only
/// protocol-level identifiers (server ids, rates), so the log — and its
/// [`hash`](Self::hash) — is identical across runs of the same seed, even
/// across processes.
///
/// Cloning shares the underlying event list: the fleet hands clones to
/// overlay episodes running concurrently with the structural stream, and
/// every recorder appends to the one log. The whole simulation runs on a
/// single paused-clock thread, so the interleaving — and therefore the
/// recorded order — is itself a pure function of the seed.
#[derive(Clone)]
pub struct ScheduleLog {
    epoch: tokio::time::Instant,
    events: Rc<RefCell<Vec<ScheduleEvent>>>,
}

impl ScheduleLog {
    /// Opens a log whose timestamps count from *now* (virtual time).
    pub fn start() -> ScheduleLog {
        ScheduleLog {
            epoch: tokio::time::Instant::now(),
            events: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Records one state change at the current virtual time.
    pub fn record(&self, nemesis: &'static str, action: impl Into<String>) {
        self.events.borrow_mut().push(ScheduleEvent {
            at_vns: to_virtual_ns(self.epoch.elapsed()),
            nemesis,
            action: action.into(),
        });
    }

    /// The recorded events, in injection order.
    pub fn events(&self) -> Vec<ScheduleEvent> {
        self.events.borrow().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// FNV-1a 64 over every event (timestamp, nemesis, action). Two runs
    /// of the same chaos seed must produce the same hash — this is the
    /// replay oracle `tests/chaos.rs` pins.
    pub fn hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for ev in self.events.borrow().iter() {
            eat(&ev.at_vns.to_le_bytes());
            eat(ev.nemesis.as_bytes());
            eat(ev.action.as_bytes());
            eat(b"\n");
        }
        h
    }
}

impl fmt::Display for ScheduleLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ev in self.events.borrow().iter() {
            writeln!(f, "{ev}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

/// The static server layout of a [`SimCluster`], computable *before* the
/// cluster exists — [`draw_nemesis`] sizes its victim draws from this, so
/// the drawn schedule depends only on the seed and the drawn topology.
///
/// Mirrors `SimCluster::build_inner`: masters on `s1..=p`, backups on the
/// next `f` servers, witnesses co-hosted with them (or on their own `f`
/// servers under `separate_witnesses`), one spare last. Only *masters*
/// ever move at runtime (recovery onto the spare), so the backup and
/// witness blocks stay accurate for the lifetime of the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of key-range partitions (= initial masters).
    pub partitions: usize,
    /// Replication / witness factor.
    pub f: usize,
    /// Witnesses hosted on their own servers instead of on the backups.
    pub separate_witnesses: bool,
}

impl Topology {
    /// Describes a CURP-mode cluster's layout.
    pub fn of(partitions: usize, f: usize, separate_witnesses: bool) -> Topology {
        Topology { partitions, f, separate_witnesses }
    }

    /// The backup servers.
    pub fn backups(&self) -> Vec<ServerId> {
        (self.partitions + 1..=self.partitions + self.f).map(|i| ServerId(i as u64)).collect()
    }

    /// The witness servers (the backups, unless separate).
    pub fn witnesses(&self) -> Vec<ServerId> {
        if self.separate_witnesses {
            (self.partitions + self.f + 1..=self.partitions + 2 * self.f)
                .map(|i| ServerId(i as u64))
                .collect()
        } else {
            self.backups()
        }
    }

    /// Backups ∪ witnesses: every server a non-master nemesis may pick on.
    pub fn replica_pool(&self) -> Vec<ServerId> {
        let mut pool = self.backups();
        for w in self.witnesses() {
            if !pool.contains(&w) {
                pool.push(w);
            }
        }
        pool
    }
}

/// Backups ∪ witnesses of a *live* cluster, in stable (ascending) order.
/// Identical to [`Topology::replica_pool`] for the matching layout — the
/// live form exists so a nemesis never has to trust a stale topology.
fn replica_pool(cluster: &SimCluster) -> Vec<ServerId> {
    let mut pool = cluster.backup_servers();
    for w in cluster.witness_servers() {
        if !pool.contains(&w) {
            pool.push(w);
        }
    }
    pool
}

fn pick(pool: &[ServerId], index: usize) -> Result<ServerId, String> {
    if pool.is_empty() {
        return Err("no servers to pick a victim from".into());
    }
    Ok(pool[index % pool.len()])
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// Cuts one replica server off from every live master, both directions,
/// for `hold_ns` of virtual time — then heals.
#[derive(Debug, Clone)]
pub struct SymmetricPartition {
    /// Victim index into the replica pool (modded at run time).
    pub victim: usize,
    /// How long the partition holds, in virtual nanoseconds.
    pub hold_ns: u64,
}

impl Nemesis for SymmetricPartition {
    fn name(&self) -> &'static str {
        "symmetric-partition"
    }

    fn run<'a>(
        &'a self,
        cluster: &'a mut SimCluster,
        log: &'a mut ScheduleLog,
    ) -> NemesisFuture<'a> {
        let masters = cluster.master_servers();
        let pool = replica_pool(cluster);
        self.run_overlay(&cluster.net, masters, pool, log)
    }

    fn is_overlay(&self) -> bool {
        true
    }

    fn run_overlay<'a>(
        &'a self,
        net: &'a MemNetwork,
        masters: Vec<ServerId>,
        pool: Vec<ServerId>,
        log: &'a ScheduleLog,
    ) -> NemesisFuture<'a> {
        Box::pin(async move {
            let victim = pick(&pool, self.victim)?;
            for m in &masters {
                net.partition(victim, *m);
                log.record(self.name(), format!("cut s{} <-> s{}", victim.0, m.0));
            }
            tokio::time::sleep(vns(self.hold_ns)).await;
            for m in &masters {
                net.heal(victim, *m);
            }
            log.record(self.name(), format!("heal s{}", victim.0));
            Ok(())
        })
    }
}

/// One-way partition: messages from the masters to one replica server (or
/// the reverse, per `inbound`) are blackholed while the opposite direction
/// still delivers — the asymmetric failure that loses only the *responses*.
#[derive(Debug, Clone)]
pub struct AsymmetricPartition {
    /// Victim index into the replica pool (modded at run time).
    pub victim: usize,
    /// `true`: master → victim direction is cut; `false`: victim → master.
    pub inbound: bool,
    /// How long the partition holds, in virtual nanoseconds.
    pub hold_ns: u64,
}

impl Nemesis for AsymmetricPartition {
    fn name(&self) -> &'static str {
        "asymmetric-partition"
    }

    fn run<'a>(
        &'a self,
        cluster: &'a mut SimCluster,
        log: &'a mut ScheduleLog,
    ) -> NemesisFuture<'a> {
        let masters = cluster.master_servers();
        let pool = replica_pool(cluster);
        self.run_overlay(&cluster.net, masters, pool, log)
    }

    fn is_overlay(&self) -> bool {
        true
    }

    fn run_overlay<'a>(
        &'a self,
        net: &'a MemNetwork,
        masters: Vec<ServerId>,
        pool: Vec<ServerId>,
        log: &'a ScheduleLog,
    ) -> NemesisFuture<'a> {
        Box::pin(async move {
            let victim = pick(&pool, self.victim)?;
            for m in &masters {
                let (from, to) = if self.inbound { (*m, victim) } else { (victim, *m) };
                net.partition_oneway(from, to);
                log.record(self.name(), format!("cut s{} -> s{}", from.0, to.0));
            }
            tokio::time::sleep(vns(self.hold_ns)).await;
            for m in &masters {
                let (from, to) = if self.inbound { (*m, victim) } else { (victim, *m) };
                net.heal_oneway(from, to);
            }
            log.record(self.name(), format!("heal s{}", victim.0));
            Ok(())
        })
    }
}

/// Seeded random loss on both directions of every master ↔ victim link.
#[derive(Debug, Clone)]
pub struct PacketDrop {
    /// Victim index into the replica pool (modded at run time).
    pub victim: usize,
    /// Per-message loss probability on the faulted links.
    pub drop_rate: f64,
    /// Seed for the links' fault RNGs (drawn from the fleet RNG).
    pub seed: u64,
    /// How long the loss holds, in virtual nanoseconds.
    pub hold_ns: u64,
}

impl Nemesis for PacketDrop {
    fn name(&self) -> &'static str {
        "packet-drop"
    }

    fn run<'a>(
        &'a self,
        cluster: &'a mut SimCluster,
        log: &'a mut ScheduleLog,
    ) -> NemesisFuture<'a> {
        let masters = cluster.master_servers();
        let pool = replica_pool(cluster);
        self.run_overlay(&cluster.net, masters, pool, log)
    }

    fn is_overlay(&self) -> bool {
        true
    }

    fn run_overlay<'a>(
        &'a self,
        net: &'a MemNetwork,
        masters: Vec<ServerId>,
        pool: Vec<ServerId>,
        log: &'a ScheduleLog,
    ) -> NemesisFuture<'a> {
        Box::pin(async move {
            let victim = pick(&pool, self.victim)?;
            let spec = FaultSpec { drop_rate: self.drop_rate, dup_rate: 0.0, seed: self.seed };
            for m in &masters {
                net.set_link_fault(*m, victim, spec);
                net.set_link_fault(victim, *m, spec);
                log.record(
                    self.name(),
                    format!("drop {:.2} on s{} <-> s{}", self.drop_rate, m.0, victim.0),
                );
            }
            tokio::time::sleep(vns(self.hold_ns)).await;
            for m in &masters {
                net.clear_link_fault(*m, victim);
                net.clear_link_fault(victim, *m);
            }
            log.record(self.name(), format!("heal s{}", victim.0));
            Ok(())
        })
    }
}

/// Replaces the latency model on every master ↔ victim link with a fixed,
/// much larger delay — reordering those links' messages far behind the
/// rest of the cluster's traffic.
#[derive(Debug, Clone)]
pub struct PacketDelay {
    /// Victim index into the replica pool (modded at run time).
    pub victim: usize,
    /// The substitute one-way delay, in virtual nanoseconds.
    pub delay_ns: u64,
    /// How long the slow links hold, in virtual nanoseconds.
    pub hold_ns: u64,
}

impl Nemesis for PacketDelay {
    fn name(&self) -> &'static str {
        "packet-delay"
    }

    fn run<'a>(
        &'a self,
        cluster: &'a mut SimCluster,
        log: &'a mut ScheduleLog,
    ) -> NemesisFuture<'a> {
        let masters = cluster.master_servers();
        let pool = replica_pool(cluster);
        self.run_overlay(&cluster.net, masters, pool, log)
    }

    fn is_overlay(&self) -> bool {
        true
    }

    fn run_overlay<'a>(
        &'a self,
        net: &'a MemNetwork,
        masters: Vec<ServerId>,
        pool: Vec<ServerId>,
        log: &'a ScheduleLog,
    ) -> NemesisFuture<'a> {
        Box::pin(async move {
            let victim = pick(&pool, self.victim)?;
            let model = Arc::new(Fixed(vns(self.delay_ns)));
            for m in &masters {
                net.set_link_latency(*m, victim, model.clone());
                net.set_link_latency(victim, *m, model.clone());
                log.record(
                    self.name(),
                    format!("delay {} vns on s{} <-> s{}", self.delay_ns, m.0, victim.0),
                );
            }
            tokio::time::sleep(vns(self.hold_ns)).await;
            for m in &masters {
                net.clear_link_latency(*m, victim);
                net.clear_link_latency(victim, *m);
            }
            log.record(self.name(), format!("heal s{}", victim.0));
            Ok(())
        })
    }
}

/// Duplicates requests on *every* link (cluster-wide default fault) — the
/// network retransmission storm RIFL's exactly-once table must absorb.
#[derive(Debug, Clone)]
pub struct PacketDup {
    /// Per-request duplication probability.
    pub dup_rate: f64,
    /// Seed for the links' fault RNGs (drawn from the fleet RNG).
    pub seed: u64,
    /// How long duplication holds, in virtual nanoseconds.
    pub hold_ns: u64,
}

impl Nemesis for PacketDup {
    fn name(&self) -> &'static str {
        "packet-dup"
    }

    fn run<'a>(
        &'a self,
        cluster: &'a mut SimCluster,
        log: &'a mut ScheduleLog,
    ) -> NemesisFuture<'a> {
        let masters = cluster.master_servers();
        let pool = replica_pool(cluster);
        self.run_overlay(&cluster.net, masters, pool, log)
    }

    fn is_overlay(&self) -> bool {
        true
    }

    fn run_overlay<'a>(
        &'a self,
        net: &'a MemNetwork,
        _masters: Vec<ServerId>,
        _pool: Vec<ServerId>,
        log: &'a ScheduleLog,
    ) -> NemesisFuture<'a> {
        Box::pin(async move {
            net.set_default_fault(Some(FaultSpec {
                drop_rate: 0.0,
                dup_rate: self.dup_rate,
                seed: self.seed,
            }));
            log.record(self.name(), format!("dup {:.2} on all links", self.dup_rate));
            tokio::time::sleep(vns(self.hold_ns)).await;
            net.set_default_fault(None);
            log.record(self.name(), "heal all links");
            Ok(())
        })
    }
}

/// Crashes one replica server mid-run and cold-restarts it from its own
/// disk alone (AOF + witness-journal replay) — the single-machine §4.6
/// failure. Requires a durable cluster.
#[derive(Debug, Clone)]
pub struct CrashRestart {
    /// Victim index into the replica pool (modded at run time).
    pub victim: usize,
    /// How long the server stays down, in virtual nanoseconds.
    pub hold_ns: u64,
}

impl Nemesis for CrashRestart {
    fn name(&self) -> &'static str {
        "crash-restart"
    }

    fn needs_disk(&self) -> bool {
        true
    }

    fn run<'a>(
        &'a self,
        cluster: &'a mut SimCluster,
        log: &'a mut ScheduleLog,
    ) -> NemesisFuture<'a> {
        Box::pin(async move {
            let victim = pick(&replica_pool(cluster), self.victim)?;
            cluster.crash_server(victim);
            log.record(self.name(), format!("crash s{}", victim.0));
            tokio::time::sleep(vns(self.hold_ns)).await;
            cluster.restart_server(victim)?;
            log.record(self.name(), format!("restart s{}", victim.0));
            Ok(())
        })
    }
}

/// Takes one *witness* host dark for `hold_ns`, then brings it back. While
/// it is down every record to it fails, so clients fall back to the
/// explicit-sync path (§4.4); on a co-hosted layout the collocated backup
/// goes down too and sync rounds stall until the restart.
#[derive(Debug, Clone)]
pub struct WitnessLoss {
    /// Victim index into the witness list (modded at run time).
    pub victim: usize,
    /// How long the witness stays down, in virtual nanoseconds.
    pub hold_ns: u64,
}

impl Nemesis for WitnessLoss {
    fn name(&self) -> &'static str {
        "witness-loss"
    }

    fn run<'a>(
        &'a self,
        cluster: &'a mut SimCluster,
        log: &'a mut ScheduleLog,
    ) -> NemesisFuture<'a> {
        Box::pin(async move {
            let victim = pick(&cluster.witness_servers(), self.victim)?;
            cluster.crash_server(victim);
            log.record(self.name(), format!("crash witness s{}", victim.0));
            tokio::time::sleep(vns(self.hold_ns)).await;
            cluster.restart_server(victim)?;
            log.record(self.name(), format!("restart witness s{}", victim.0));
            Ok(())
        })
    }
}

/// Kills one partition's master and recovers the partition onto the spare
/// server (§3.3/§4.6) — witness replay, backup restore, epoch bump — while
/// load keeps arriving. The deposed host rejoins as the next spare.
#[derive(Debug, Clone)]
pub struct MasterChurn {
    /// Partition index (modded by the partition count at run time).
    pub partition: usize,
}

impl Nemesis for MasterChurn {
    fn name(&self) -> &'static str {
        "master-churn"
    }

    fn run<'a>(
        &'a self,
        cluster: &'a mut SimCluster,
        log: &'a mut ScheduleLog,
    ) -> NemesisFuture<'a> {
        Box::pin(async move {
            let partition = self.partition % cluster.master_ids.len();
            let old = cluster.master_ids[partition];
            log.record(self.name(), format!("kill master m{} (partition {partition})", old.0));
            let new = cluster.churn_master(partition).await?;
            log.record(self.name(), format!("recovered as m{}", new.0));
            Ok(())
        })
    }
}

/// The §3.6 nemesis: an *online split*. One live partition drains, cuts
/// its range at a drawn point, and migrates the upper half onto a spare
/// master — drain, install, map publish — while the fleet's open-loop load
/// keeps arriving and re-routes through NotOwner redirects.
///
/// A live cluster may legitimately refuse a split (no spare server left, a
/// migration already draining, writes racing the cut); those refusals
/// change nothing and are recorded in the schedule as skips rather than
/// failing the episode — the linearizability check still judges whatever
/// the cluster actually did.
#[derive(Debug, Clone)]
pub struct SplitMigration {
    /// Partition index (modded by the live partition count at run time).
    pub partition: usize,
    /// Split point as a position inside the partition's range, in
    /// 1/1024ths (clamped so both halves stay non-empty).
    pub frac_1024: u64,
}

impl Nemesis for SplitMigration {
    fn name(&self) -> &'static str {
        "split-migration"
    }

    fn run<'a>(
        &'a self,
        cluster: &'a mut SimCluster,
        log: &'a mut ScheduleLog,
    ) -> NemesisFuture<'a> {
        Box::pin(async move {
            let cfg = cluster.coord.config();
            let idx = self.partition % cfg.partitions.len();
            let part = cfg.partitions[idx].clone();
            let width = part.range.end - part.range.start;
            if width < 2 {
                log.record(self.name(), format!("skip: partition {idx} too narrow to split"));
                return Ok(());
            }
            let split_at = (part.range.start
                + (width / 1024).max(1).saturating_mul(self.frac_1024.clamp(1, 1023)))
            .clamp(part.range.start + 1, part.range.end - 1);
            let Some(spare) = cluster.coord.spare_servers().first().copied() else {
                log.record(self.name(), "skip: no spare server");
                return Ok(());
            };
            log.record(
                self.name(),
                format!("split m{} at {:#018x} onto s{}", part.master_id.0, split_at, spare.0),
            );
            // Under continuous load the drain can lose the race with the
            // write stream a few times before a sync round converges.
            let mut last = String::new();
            for _ in 0..20 {
                match cluster
                    .coord
                    .migrate(
                        part.master_id,
                        split_at,
                        spare,
                        part.backups.clone(),
                        part.witnesses.clone(),
                    )
                    .await
                {
                    Ok(new_id) => {
                        // The coordinator appends the new partition last;
                        // mirror that so MasterChurn's index mapping holds.
                        cluster.master_ids.push(new_id);
                        log.record(
                            self.name(),
                            format!(
                                "installed m{} (map v{})",
                                new_id.0,
                                cluster.coord.config().version
                            ),
                        );
                        return Ok(());
                    }
                    Err(e) => {
                        last = e;
                        tokio::time::sleep(vns(250_000)).await;
                    }
                }
            }
            log.record(self.name(), format!("skip: {last}"));
            Ok(())
        })
    }
}

/// The §5.4 nemesis: every server loses power at once and the whole
/// cluster cold-boots from disk. Requires a durable cluster.
#[derive(Debug, Clone)]
pub struct PowerLoss;

impl Nemesis for PowerLoss {
    fn name(&self) -> &'static str {
        "power-loss"
    }

    fn needs_disk(&self) -> bool {
        true
    }

    fn run<'a>(
        &'a self,
        cluster: &'a mut SimCluster,
        log: &'a mut ScheduleLog,
    ) -> NemesisFuture<'a> {
        Box::pin(async move {
            log.record(self.name(), "whole-cluster power out");
            // A concurrent overlay fault (drop, delay, one-way cut) can make
            // one restart attempt fail; since recovery became re-entrant the
            // restart is safe to re-issue until the links let it through.
            let mut last = String::new();
            for _ in 0..20 {
                match cluster.power_loss_restart().await {
                    Ok(new_ids) => {
                        let ids: Vec<String> =
                            new_ids.iter().map(|m| format!("m{}", m.0)).collect();
                        log.record(
                            self.name(),
                            format!("cold restart, masters [{}]", ids.join(", ")),
                        );
                        return Ok(());
                    }
                    Err(e) => {
                        last = e;
                        tokio::time::sleep(vns(250_000)).await;
                    }
                }
            }
            Err(format!("power-loss restart never converged: {last}"))
        })
    }
}

/// The orchestrator-failure nemesis: the coordinator is killed *mid-plan*
/// — partway through a `recover_master` or a `migrate` — then cold-boots
/// from its write-ahead intent log and must resume (or cleanly abort) the
/// interrupted plan. This is the episode the intent log exists for.
///
/// The kill is a real cancellation: the orchestration future is raced
/// against a timer and dropped when the timer wins, exactly like a
/// coordinator process dying between two intent-log appends.
#[derive(Debug, Clone)]
pub struct CoordinatorCrash {
    /// Partition index (modded by the live partition count at run time).
    pub partition: usize,
    /// `true` → interrupt a master recovery; `false` → interrupt a split
    /// migration.
    pub recover: bool,
    /// How long the orchestration runs before the coordinator dies, in
    /// virtual nanoseconds.
    pub kill_after_ns: u64,
    /// `true` → finish via a whole-cluster power loss (the interrupted
    /// plan resolves inside `restart_cluster`); `false` → re-issue the
    /// same orchestration call against the rebooted coordinator.
    pub then_power_loss: bool,
    /// Split point for the migrate variant, in 1/1024ths.
    pub frac_1024: u64,
}

impl Nemesis for CoordinatorCrash {
    fn name(&self) -> &'static str {
        "coordinator-crash"
    }

    fn needs_disk(&self) -> bool {
        true
    }

    fn run<'a>(
        &'a self,
        cluster: &'a mut SimCluster,
        log: &'a mut ScheduleLog,
    ) -> NemesisFuture<'a> {
        Box::pin(async move {
            if self.recover {
                self.run_recover(cluster, log).await
            } else {
                self.run_migrate(cluster, log).await
            }
        })
    }
}

impl CoordinatorCrash {
    /// Crash a master, kill the coordinator mid-`recover_master`, cold-boot
    /// it from the intent log, and finish the recovery.
    async fn run_recover(
        &self,
        cluster: &mut SimCluster,
        log: &mut ScheduleLog,
    ) -> Result<(), String> {
        let partition = self.partition % cluster.master_ids.len();
        let old = cluster.master_ids[partition];
        let old_host = cluster.coord.config().partitions[partition].master;
        let Some(spare) = cluster.spare_server() else {
            log.record(self.name(), "skip: no spare server");
            return Ok(());
        };
        cluster.crash_server(old_host);
        log.record(
            self.name(),
            format!("kill master m{} then coordinator after {} vns", old.0, self.kill_after_ns),
        );
        let outcome = tokio::select! {
            res = cluster.coord.recover_master(old, spare) => Some(res),
            _ = tokio::time::sleep(vns(self.kill_after_ns)) => None,
        };
        let mut recovered = matches!(outcome, Some(Ok(_)));
        if outcome.is_none() {
            let resumed = cluster.coordinator_cold_boot()?;
            log.record(self.name(), format!("coordinator cold boot, {resumed} open plan(s)"));
        } else if recovered {
            log.record(self.name(), "recovery outran the kill timer");
        }
        if self.then_power_loss {
            // Finish through a whole-cluster outage: `restart_cluster`
            // re-anchors every partition and the interrupted plan resolves
            // (resumes or cleanly aborts) inside `resume_plans`.
            let mut last = String::new();
            let mut booted = false;
            for _ in 0..20 {
                match cluster.power_loss_restart().await {
                    Ok(_) => {
                        booted = true;
                        break;
                    }
                    Err(e) => {
                        last = e;
                        tokio::time::sleep(vns(250_000)).await;
                    }
                }
            }
            if !booted {
                return Err(format!("power-loss finish never converged: {last}"));
            }
        } else if !recovered {
            // Re-issue the same call: the coordinator finds the open plan
            // in its intent log and resumes it instead of starting over.
            let mut last = String::new();
            for _ in 0..40 {
                match cluster.coord.recover_master(old, spare).await {
                    Ok(_) => {
                        recovered = true;
                        break;
                    }
                    Err(e) => {
                        last = e;
                        tokio::time::sleep(vns(250_000)).await;
                    }
                }
            }
            if !recovered {
                return Err(format!("resumed recovery never converged: {last}"));
            }
        }
        // Mirror whatever masters the recovery (or restart) actually chose.
        let cfg = cluster.coord.config();
        cluster.master_ids = cfg.partitions.iter().map(|p| p.master_id).collect();
        cluster.master_id = cluster.master_ids[0];
        // The deposed host rejoins as the next spare — unless the restart
        // path already recovered a partition back onto it.
        if !cfg.partitions.iter().any(|p| p.master == old_host) {
            cluster.restart_server(old_host)?;
        }
        let new = cfg
            .partitions
            .get(partition)
            .map(|p| p.master_id)
            .ok_or_else(|| format!("partition {partition} vanished after recovery"))?;
        log.record(self.name(), format!("recovered as m{}", new.0));
        Ok(())
    }

    /// Kill the coordinator mid-`migrate`, cold-boot it, and let the resume
    /// path finish (or cleanly abort) the split.
    async fn run_migrate(
        &self,
        cluster: &mut SimCluster,
        log: &mut ScheduleLog,
    ) -> Result<(), String> {
        let cfg = cluster.coord.config();
        let idx = self.partition % cfg.partitions.len();
        let part = cfg.partitions[idx].clone();
        let width = part.range.end - part.range.start;
        if width < 2 {
            log.record(self.name(), format!("skip: partition {idx} too narrow to split"));
            return Ok(());
        }
        let split_at = (part.range.start
            + (width / 1024).max(1).saturating_mul(self.frac_1024.clamp(1, 1023)))
        .clamp(part.range.start + 1, part.range.end - 1);
        let Some(spare) = cluster.coord.spare_servers().first().copied() else {
            log.record(self.name(), "skip: no spare server");
            return Ok(());
        };
        log.record(
            self.name(),
            format!(
                "split m{} at {:#018x} onto s{}, coordinator dies after {} vns",
                part.master_id.0, split_at, spare.0, self.kill_after_ns
            ),
        );
        let migrate = cluster.coord.migrate(
            part.master_id,
            split_at,
            spare,
            part.backups.clone(),
            part.witnesses.clone(),
        );
        let outcome = tokio::select! {
            res = migrate => Some(res),
            _ = tokio::time::sleep(vns(self.kill_after_ns)) => None,
        };
        match outcome {
            Some(Ok(new_id)) => {
                cluster.master_ids.push(new_id);
                log.record(self.name(), format!("migration outran the kill timer (m{})", new_id.0));
                return Ok(());
            }
            Some(Err(e)) => {
                // A live refusal (drain race, no progress) before the kill
                // fired — same benign skip as SplitMigration.
                log.record(self.name(), format!("skip: {e}"));
                return Ok(());
            }
            None => {
                let resumed = cluster.coordinator_cold_boot()?;
                log.record(self.name(), format!("coordinator cold boot, {resumed} open plan(s)"));
            }
        }
        if self.then_power_loss {
            let mut last = String::new();
            for _ in 0..20 {
                match cluster.power_loss_restart().await {
                    Ok(_) => {
                        last.clear();
                        break;
                    }
                    Err(e) => {
                        last = e;
                        tokio::time::sleep(vns(250_000)).await;
                    }
                }
            }
            if !last.is_empty() {
                return Err(format!("power-loss finish never converged: {last}"));
            }
        } else {
            let mut last = String::new();
            let mut settled = false;
            for _ in 0..20 {
                match cluster
                    .coord
                    .migrate(
                        part.master_id,
                        split_at,
                        spare,
                        part.backups.clone(),
                        part.witnesses.clone(),
                    )
                    .await
                {
                    Ok(new_id) => {
                        cluster.master_ids.push(new_id);
                        log.record(
                            self.name(),
                            format!(
                                "resumed split installed m{} (map v{})",
                                new_id.0,
                                cluster.coord.config().version
                            ),
                        );
                        settled = true;
                        break;
                    }
                    Err(e) => {
                        last = e;
                        if last.contains("aborted") {
                            // The resume path judged the interrupted plan
                            // unsalvageable and rolled it back; that is a
                            // legal outcome, not a failure.
                            log.record(self.name(), format!("skip: {last}"));
                            settled = true;
                            break;
                        }
                        tokio::time::sleep(vns(250_000)).await;
                    }
                }
            }
            if !settled {
                log.record(self.name(), format!("skip: {last}"));
            }
        }
        // The restart/resume may have installed the new partition; keep the
        // id mirror in sync either way.
        let cfg = cluster.coord.config();
        cluster.master_ids = cfg.partitions.iter().map(|p| p.master_id).collect();
        cluster.master_id = cluster.master_ids[0];
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Drawing
// ---------------------------------------------------------------------------

/// Draws one fully-parameterised nemesis from the seeded RNG. Victim
/// indices are drawn against `topo`'s pool sizes (and re-modded at run
/// time), hold times span 200 µs – 2 ms of virtual time so an episode
/// overlaps tens of open-loop arrivals.
pub fn draw_nemesis(rng: &mut StdRng, topo: &Topology) -> Box<dyn Nemesis> {
    let hold_ns = rng.gen_range(200_000..=2_000_000u64);
    let pool = topo.replica_pool().len().max(1);
    match rng.gen_range(0..10u32) {
        0 => Box::new(SymmetricPartition { victim: rng.gen_range(0..pool), hold_ns }),
        1 => Box::new(AsymmetricPartition {
            victim: rng.gen_range(0..pool),
            inbound: rng.gen_bool(0.5),
            hold_ns,
        }),
        2 => Box::new(PacketDrop {
            victim: rng.gen_range(0..pool),
            drop_rate: rng.gen_range(0.05..0.35),
            seed: rng.gen(),
            hold_ns,
        }),
        3 => Box::new(PacketDelay {
            victim: rng.gen_range(0..pool),
            delay_ns: rng.gen_range(5_000..50_000u64),
            hold_ns,
        }),
        4 => Box::new(PacketDup { dup_rate: rng.gen_range(0.5..1.0), seed: rng.gen(), hold_ns }),
        5 => Box::new(CrashRestart { victim: rng.gen_range(0..pool), hold_ns }),
        6 => Box::new(WitnessLoss { victim: rng.gen_range(0..topo.f.max(1)), hold_ns }),
        7 => Box::new(MasterChurn { partition: rng.gen_range(0..topo.partitions.max(1)) }),
        8 => Box::new(SplitMigration {
            partition: rng.gen_range(0..topo.partitions.max(1)),
            frac_1024: rng.gen_range(64..=960),
        }),
        _ => Box::new(CoordinatorCrash {
            partition: rng.gen_range(0..topo.partitions.max(1)),
            recover: rng.gen_bool(0.6),
            kill_after_ns: rng.gen_range(10_000..=300_000),
            then_power_loss: rng.gen_bool(0.25),
            frac_1024: rng.gen_range(64..=960),
        }),
    }
}

/// Draws one network-only nemesis — the five combinators that can run as a
/// concurrent overlay against cloned network handles while a structural
/// episode reshapes the cluster underneath them.
pub fn draw_overlay(rng: &mut StdRng, topo: &Topology) -> Box<dyn Nemesis> {
    let hold_ns = rng.gen_range(200_000..=2_000_000u64);
    let pool = topo.replica_pool().len().max(1);
    match rng.gen_range(0..5u32) {
        0 => Box::new(SymmetricPartition { victim: rng.gen_range(0..pool), hold_ns }),
        1 => Box::new(AsymmetricPartition {
            victim: rng.gen_range(0..pool),
            inbound: rng.gen_bool(0.5),
            hold_ns,
        }),
        2 => Box::new(PacketDrop {
            victim: rng.gen_range(0..pool),
            drop_rate: rng.gen_range(0.05..0.35),
            seed: rng.gen(),
            hold_ns,
        }),
        3 => Box::new(PacketDelay {
            victim: rng.gen_range(0..pool),
            delay_ns: rng.gen_range(5_000..50_000u64),
            hold_ns,
        }),
        _ => Box::new(PacketDup { dup_rate: rng.gen_range(0.5..1.0), seed: rng.gen(), hold_ns }),
    }
}

/// One drawn slot in a chaos schedule. Every draw happens up front in
/// [`draw_schedule`], so a subset of episodes (selected by `index`) can be
/// re-run without disturbing the other episodes' parameters — the property
/// the shrinker depends on.
pub struct Episode {
    /// Position in the drawn schedule; stable under masking.
    pub index: usize,
    pub nemesis: Box<dyn Nemesis>,
    /// `true` → runs concurrently (against cloned network handles) while
    /// the structural stream reshapes the cluster underneath it.
    pub overlay: bool,
    /// Overlay: launch delay from schedule start. Structural: gap slept
    /// before the episode fires.
    pub at_ns: u64,
}

/// Draws a whole schedule: 1–3 structural episodes run strictly in
/// sequence (with [`PowerLoss`] mixed in at low probability — it is the
/// heaviest episode by far), plus 0–2 network overlays that run
/// *concurrently* with the structural stream. The heal barrier moves to
/// the end of the schedule: while any episode is live, another's faults
/// may still be in force.
pub fn draw_schedule(rng: &mut StdRng, topo: &Topology) -> Vec<Episode> {
    let mut episodes = Vec::new();
    let structural = rng.gen_range(1..=3);
    for _ in 0..structural {
        let nemesis = if rng.gen_bool(0.15) {
            Box::new(PowerLoss) as Box<dyn Nemesis>
        } else {
            draw_nemesis(rng, topo)
        };
        let at_ns = rng.gen_range(30_000..=300_000u64);
        episodes.push(Episode { index: episodes.len(), nemesis, overlay: false, at_ns });
    }
    let overlays = rng.gen_range(0..=2);
    for _ in 0..overlays {
        let nemesis = draw_overlay(rng, topo);
        let at_ns = rng.gen_range(0..=600_000u64);
        episodes.push(Episode { index: episodes.len(), nemesis, overlay: true, at_ns });
    }
    episodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Mode, RamcloudParams, SimCluster};
    use crate::time::run_sim;
    use crate::TempDir;
    use bytes::Bytes;
    use curp_proto::op::{Op, OpResult};
    use rand::SeedableRng;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    async fn put(cluster: &SimCluster, key: &str, val: &str) {
        let client = cluster.client(7).await;
        client.update(Op::Put { key: b(key), value: b(val) }).await.expect("put");
    }

    async fn get(cluster: &SimCluster, key: &str) -> Option<Bytes> {
        let client = cluster.client(8).await;
        match client.read(Op::Get { key: b(key) }).await.expect("get") {
            OpResult::Value(v) => v,
            other => panic!("unexpected read result {other:?}"),
        }
    }

    /// Runs one nemesis against a fresh memory cluster and asserts the
    /// cluster still serves reads and writes afterwards.
    fn survives(nemesis: impl Nemesis, expect_events: usize) {
        run_sim(async move {
            let mut cluster = SimCluster::build(Mode::Curp, RamcloudParams::new(3)).await;
            put(&cluster, "k", "before").await;
            let mut log = ScheduleLog::start();
            nemesis.run(&mut cluster, &mut log).await.expect("nemesis failed");
            assert_eq!(log.len(), expect_events, "schedule:\n{log}");
            assert_ne!(log.hash(), 0);
            put(&cluster, "k", "after").await;
            assert_eq!(get(&cluster, "k").await, Some(b("after")));
        });
    }

    #[test]
    fn symmetric_partition_holds_then_heals() {
        // 1 master → one cut event + one heal event.
        survives(SymmetricPartition { victim: 0, hold_ns: 50_000 }, 2);
    }

    #[test]
    fn asymmetric_partition_cuts_one_direction_then_heals() {
        survives(AsymmetricPartition { victim: 1, inbound: true, hold_ns: 50_000 }, 2);
        survives(AsymmetricPartition { victim: 1, inbound: false, hold_ns: 50_000 }, 2);
    }

    #[test]
    fn packet_drop_is_cleared_after_hold() {
        survives(PacketDrop { victim: 2, drop_rate: 0.3, seed: 42, hold_ns: 50_000 }, 2);
    }

    #[test]
    fn packet_delay_slows_then_restores_the_link() {
        survives(PacketDelay { victim: 0, delay_ns: 20_000, hold_ns: 50_000 }, 2);
    }

    #[test]
    fn packet_dup_preserves_exactly_once() {
        run_sim(async {
            let mut cluster = SimCluster::build(Mode::Curp, RamcloudParams::new(3)).await;
            let client = cluster.client(7).await;
            // Duplicate every request while a counter climbs: RIFL must
            // absorb every duplicate or the count overshoots.
            let nemesis = PacketDup { dup_rate: 1.0, seed: 7, hold_ns: 1 };
            let mut log = ScheduleLog::start();
            // Inject by hand (hold window is irrelevant here — the fault
            // stays on while we drive load, then we heal explicitly).
            cluster.net.set_default_fault(Some(FaultSpec {
                drop_rate: 0.0,
                dup_rate: 1.0,
                seed: 7,
            }));
            for _ in 0..10 {
                client.update(Op::Incr { key: b("c"), delta: 1 }).await.expect("incr");
            }
            cluster.net.set_default_fault(None);
            let r = client.read(Op::Get { key: b("c") }).await.expect("read");
            assert_eq!(r, OpResult::Value(Some(b("10"))), "duplicates double-applied");
            // And the combinator itself heals cleanly.
            nemesis.run(&mut cluster, &mut log).await.expect("nemesis failed");
            assert_eq!(log.len(), 2);
        });
    }

    #[test]
    fn crash_restart_mid_sync_cold_boots_the_backup() {
        run_sim(async {
            let dir = TempDir::new("curp-nemesis-crashrestart").unwrap();
            let mut params = RamcloudParams::new(3);
            params.batch_size = 2; // frequent syncs: the AOF carries state
            let mut cluster = SimCluster::build_durable(Mode::Curp, params, 1, dir.path()).await;
            for i in 0..6 {
                put(&cluster, "k", &format!("v{i}")).await;
            }
            let mut log = ScheduleLog::start();
            let nemesis = CrashRestart { victim: 0, hold_ns: 100_000 };
            assert!(nemesis.needs_disk());
            nemesis.run(&mut cluster, &mut log).await.expect("nemesis failed");
            assert_eq!(log.len(), 2, "schedule:\n{log}");
            // The restarted backup was rebuilt from disk and keeps serving:
            // new writes sync to it and reads see them.
            put(&cluster, "k", "post").await;
            assert_eq!(get(&cluster, "k").await, Some(b("post")));
        });
    }

    #[test]
    fn witness_loss_forces_sync_fallback_then_recovers() {
        run_sim(async {
            let mut params = RamcloudParams::new(3);
            params.separate_witnesses = true;
            // No background syncing: only the §4.4 fallback syncs. Writes
            // use distinct keys — with syncs off, witness records linger,
            // and a same-key record would be rejected as non-commuting
            // (masking the fast-path recovery this test pins).
            params.batch_size = 10_000;
            params.sync_interval_ns = u64::MAX / 2048;
            let mut cluster = SimCluster::build(Mode::Curp, params).await;
            let client = cluster.client(7).await;
            client.update(Op::Put { key: b("a"), value: b("v1") }).await.expect("put");
            assert_eq!(client.stats.fast_path.load(std::sync::atomic::Ordering::Relaxed), 1);

            let mut log = ScheduleLog::start();
            let nemesis = WitnessLoss { victim: 0, hold_ns: 200_000 };
            let run = nemesis.run(&mut cluster, &mut log);
            // Race a write against the outage window: it must complete (via
            // the sync fallback — the witness is down) without fast-pathing.
            let fut = async {
                tokio::time::sleep(vns(50_000)).await;
                client.update(Op::Put { key: b("b"), value: b("v2") }).await.expect("put");
            };
            let (ran, ()) = tokio::join!(run, fut);
            ran.expect("nemesis failed");
            assert_eq!(
                client.stats.fast_path.load(std::sync::atomic::Ordering::Relaxed),
                1,
                "a write during witness loss cannot take the fast path"
            );
            // Witness back: the fast path returns.
            client.update(Op::Put { key: b("c"), value: b("v3") }).await.expect("put");
            assert_eq!(client.stats.fast_path.load(std::sync::atomic::Ordering::Relaxed), 2);
        });
    }

    #[test]
    fn master_churn_moves_the_partition_to_the_spare() {
        run_sim(async {
            let mut cluster = SimCluster::build(Mode::Curp, RamcloudParams::new(3)).await;
            put(&cluster, "k", "v").await;
            let old = cluster.master_id;
            let mut log = ScheduleLog::start();
            MasterChurn { partition: 0 }.run(&mut cluster, &mut log).await.expect("churn failed");
            assert_ne!(cluster.master_id, old);
            assert_eq!(log.len(), 2, "schedule:\n{log}");
            assert_eq!(get(&cluster, "k").await, Some(b("v")));
        });
    }

    #[test]
    fn split_migration_splits_a_live_partition_then_skips_without_a_spare() {
        run_sim(async {
            let mut cluster = SimCluster::build(Mode::Curp, RamcloudParams::new(3)).await;
            put(&cluster, "k", "v").await;
            let before = cluster.coord.config();
            let mut log = ScheduleLog::start();
            SplitMigration { partition: 0, frac_1024: 512 }
                .run(&mut cluster, &mut log)
                .await
                .expect("split failed");
            let after = cluster.coord.config();
            assert_eq!(after.partitions.len(), before.partitions.len() + 1);
            assert!(after.version > before.version, "a split must publish a newer map");
            assert_eq!(cluster.master_ids.len(), 2, "new master mirrored into the sim");
            assert_eq!(log.len(), 2, "schedule:\n{log}");
            // Both halves keep serving through the published map.
            put(&cluster, "k", "after").await;
            assert_eq!(get(&cluster, "k").await, Some(b("after")));
            // The default topology had exactly one spare — a second split
            // finds none and records a benign skip instead of failing.
            let mut log2 = ScheduleLog::start();
            SplitMigration { partition: 1, frac_1024: 200 }
                .run(&mut cluster, &mut log2)
                .await
                .expect("no-spare split must not error");
            assert_eq!(log2.len(), 1, "schedule:\n{log2}");
            assert!(log2.events()[0].action.contains("no spare"), "{log2}");
            assert_eq!(cluster.coord.config().partitions.len(), after.partitions.len());
        });
    }

    #[test]
    fn power_loss_nemesis_cold_restarts_the_cluster() {
        run_sim(async {
            let dir = TempDir::new("curp-nemesis-powerloss").unwrap();
            let mut params = RamcloudParams::new(3);
            params.batch_size = 5;
            let mut cluster = SimCluster::build_durable(Mode::Curp, params, 1, dir.path()).await;
            put(&cluster, "k", "v").await;
            let old = cluster.master_id;
            let mut log = ScheduleLog::start();
            PowerLoss.run(&mut cluster, &mut log).await.expect("power loss failed");
            assert_ne!(cluster.master_id, old, "the partition must be re-incarnated");
            assert_eq!(get(&cluster, "k").await, Some(b("v")));
            assert_eq!(log.len(), 2);
        });
    }

    #[test]
    fn coordinator_crash_mid_recovery_resumes_from_the_intent_log() {
        run_sim(async {
            let dir = TempDir::new("curp-nemesis-coordcrash-recover").unwrap();
            let mut params = RamcloudParams::new(3);
            params.batch_size = 5;
            let mut cluster = SimCluster::build_durable(Mode::Curp, params, 1, dir.path()).await;
            put(&cluster, "k", "v").await;
            let old = cluster.master_id;
            let v_before = cluster.coord.config().version;
            let mut log = ScheduleLog::start();
            let nemesis = CoordinatorCrash {
                partition: 0,
                recover: true,
                // 1 vns: the kill always beats the first recovery RPC, so
                // the plan is interrupted with certainty.
                kill_after_ns: 1,
                then_power_loss: false,
                frac_1024: 512,
            };
            assert!(nemesis.needs_disk());
            nemesis.run(&mut cluster, &mut log).await.expect("coordinator-crash failed");
            assert_ne!(cluster.master_id, old, "the partition must be re-incarnated");
            assert!(cluster.coord.config().version > v_before, "recovery must publish a newer map");
            assert_eq!(cluster.coord.open_plan_count(), 0, "no plan may stay open");
            let rendered = format!("{log}");
            assert!(rendered.contains("cold boot"), "schedule:\n{log}");
            put(&cluster, "k", "after").await;
            assert_eq!(get(&cluster, "k").await, Some(b("after")));
        });
    }

    #[test]
    fn coordinator_crash_mid_recovery_survives_a_power_loss_finish() {
        run_sim(async {
            let dir = TempDir::new("curp-nemesis-coordcrash-power").unwrap();
            let mut params = RamcloudParams::new(3);
            params.batch_size = 5;
            let mut cluster = SimCluster::build_durable(Mode::Curp, params, 1, dir.path()).await;
            put(&cluster, "k", "v").await;
            let v_before = cluster.coord.config().version;
            let mut log = ScheduleLog::start();
            CoordinatorCrash {
                partition: 0,
                recover: true,
                kill_after_ns: 1,
                then_power_loss: true,
                frac_1024: 512,
            }
            .run(&mut cluster, &mut log)
            .await
            .expect("coordinator-crash + power-loss failed");
            assert!(cluster.coord.config().version > v_before);
            assert_eq!(cluster.coord.open_plan_count(), 0, "restart must resolve the open plan");
            assert_eq!(get(&cluster, "k").await, Some(b("v")));
            put(&cluster, "k", "after").await;
            assert_eq!(get(&cluster, "k").await, Some(b("after")));
        });
    }

    #[test]
    fn coordinator_crash_mid_migrate_resumes_or_aborts_cleanly() {
        run_sim(async {
            let dir = TempDir::new("curp-nemesis-coordcrash-migrate").unwrap();
            let mut params = RamcloudParams::new(3);
            params.batch_size = 5;
            let mut cluster = SimCluster::build_durable(Mode::Curp, params, 1, dir.path()).await;
            put(&cluster, "k", "v").await;
            let before = cluster.coord.config();
            let mut log = ScheduleLog::start();
            CoordinatorCrash {
                partition: 0,
                recover: false,
                kill_after_ns: 1,
                then_power_loss: false,
                frac_1024: 512,
            }
            .run(&mut cluster, &mut log)
            .await
            .expect("coordinator-crash migrate failed");
            let after = cluster.coord.config();
            assert_eq!(cluster.coord.open_plan_count(), 0, "no plan may stay open");
            // The resumed split either installed (one more partition, newer
            // map) or aborted back to the pre-split map; both are legal, and
            // the keyspace must stay fully covered either way.
            assert!(after.partitions.len() >= before.partitions.len());
            if after.partitions.len() > before.partitions.len() {
                assert!(after.version > before.version);
            }
            let mut ranges: Vec<_> = after.partitions.iter().map(|p| p.range).collect();
            ranges.sort_by_key(|r| r.start);
            assert_eq!(ranges.first().map(|r| r.start), Some(0));
            assert_eq!(ranges.last().map(|r| r.end), Some(u64::MAX));
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "keyspace gap or overlap after resume");
            }
            put(&cluster, "k", "after").await;
            assert_eq!(get(&cluster, "k").await, Some(b("after")));
        });
    }

    #[test]
    fn overlay_runs_concurrently_with_a_structural_episode() {
        run_sim(async {
            let mut cluster = SimCluster::build(Mode::Curp, RamcloudParams::new(3)).await;
            put(&cluster, "k", "v").await;
            let mut log = ScheduleLog::start();
            let overlay_log = log.clone();
            let overlay = PacketDrop { victim: 1, drop_rate: 0.2, seed: 9, hold_ns: 400_000 };
            let net = cluster.net.clone();
            let masters = cluster.master_servers();
            let pool = replica_pool(&cluster);
            // The overlay holds its faults across the whole churn: the heal
            // barrier only exists at the end of the schedule.
            let overlay_fut = overlay.run_overlay(&net, masters, pool, &overlay_log);
            let structural_fut = async {
                tokio::time::sleep(vns(30_000)).await;
                MasterChurn { partition: 0 }.run(&mut cluster, &mut log).await
            };
            let (o, s) = tokio::join!(overlay_fut, structural_fut);
            o.expect("overlay failed");
            s.expect("structural failed");
            assert!(cluster.net.residual_faults().is_empty(), "faults must be healed");
            // Both streams recorded into the same shared log.
            let names: std::collections::BTreeSet<_> =
                log.events().iter().map(|e| e.nemesis.to_string()).collect();
            assert!(names.contains("packet-drop") && names.contains("master-churn"), "{log}");
            put(&cluster, "k", "after").await;
            assert_eq!(get(&cluster, "k").await, Some(b("after")));
        });
    }

    #[test]
    fn drawn_schedule_is_a_pure_function_of_the_seed() {
        let topo = Topology::of(2, 3, true);
        let draw_names = |seed: u64| -> Vec<&'static str> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32).map(|_| draw_nemesis(&mut rng, &topo).name()).collect()
        };
        // Same seed → identical sequence; different seed → different.
        assert_eq!(draw_names(0xC0FFEE), draw_names(0xC0FFEE));
        assert_ne!(draw_names(0xC0FFEE), draw_names(0xC0FFEF));
        // All ten combinators are reachable from draw_nemesis.
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..512 {
            seen.insert(draw_nemesis(&mut rng, &topo).name());
        }
        assert_eq!(seen.len(), 10, "combinators drawn: {seen:?}");
        // Overlays draw only the five network combinators.
        let mut rng = StdRng::seed_from_u64(2);
        let mut overlays = std::collections::BTreeSet::new();
        for _ in 0..256 {
            let n = draw_overlay(&mut rng, &topo);
            assert!(n.is_overlay(), "{} drawn as overlay", n.name());
            overlays.insert(n.name());
        }
        assert_eq!(overlays.len(), 5, "overlay combinators drawn: {overlays:?}");
        // And whole schedules replay identically from the same seed.
        let shape = |seed: u64| -> Vec<(usize, &'static str, bool, u64)> {
            let mut rng = StdRng::seed_from_u64(seed);
            draw_schedule(&mut rng, &topo)
                .iter()
                .map(|e| (e.index, e.nemesis.name(), e.overlay, e.at_ns))
                .collect()
        };
        assert_eq!(shape(0xFEED), shape(0xFEED));
        let structural = shape(0xFEED).iter().filter(|(_, _, overlay, _)| !overlay).count();
        assert!((1..=3).contains(&structural));
    }

    #[test]
    fn schedule_hash_is_order_and_content_sensitive() {
        run_sim(async {
            let a = ScheduleLog::start();
            a.record("x", "one");
            a.record("y", "two");
            let b_log = ScheduleLog::start();
            b_log.record("y", "two");
            b_log.record("x", "one");
            assert_ne!(a.hash(), b_log.hash(), "hash must be order-sensitive");
            let c = ScheduleLog::start();
            c.record("x", "one");
            c.record("y", "two");
            assert_eq!(a.hash(), c.hash(), "identical logs must hash equal");
            assert!(!a.is_empty());
            assert_eq!(a.events().len(), 2);
        });
    }

    #[test]
    fn topology_mirrors_the_cluster_layout() {
        run_sim(async {
            // Co-hosted: witnesses are the backups.
            let cluster = SimCluster::build(Mode::Curp, RamcloudParams::new(3)).await;
            let topo = Topology::of(1, 3, false);
            assert_eq!(topo.backups(), cluster.backup_servers());
            assert_eq!(topo.witnesses(), cluster.witness_servers());
            assert_eq!(topo.replica_pool().len(), 3);
        });
        run_sim(async {
            // Separate: a second block of f witness hosts.
            let mut params = RamcloudParams::new(3);
            params.separate_witnesses = true;
            let cluster = SimCluster::build_partitioned(Mode::Curp, params, 2).await;
            let topo = Topology::of(2, 3, true);
            assert_eq!(topo.backups(), cluster.backup_servers());
            assert_eq!(topo.witnesses(), cluster.witness_servers());
            assert_eq!(topo.replica_pool().len(), 6);
        });
    }
}
