//! Simulation harness for reproducing the paper's evaluation.
//!
//! Everything here runs on [`curp_transport::MemNetwork`] under tokio's
//! *paused* clock, which turns the cluster into a deterministic
//! discrete-event simulation. Because tokio's timer rounds sleeps up to
//! 1 ms, simulations use **scaled virtual time**: 1 virtual nanosecond is
//! represented as 1 tokio millisecond ([`time`]). All latency models,
//! dispatch costs and measurements in this crate follow that convention, so
//! a measured "7.3 µs" is 7.3 million tokio-milliseconds of paused time —
//! which costs nothing in wall-clock terms.
//!
//! * [`time`] — the virtual-time helpers and the simulation runtime;
//! * [`cluster`] — the RAMCloud-class cluster model (Figures 5–7, 12) with
//!   the four systems compared in the paper: Original (synchronous
//!   replication), Async (unsafe asynchronous replication), CURP, and
//!   Unreplicated;
//! * [`redis`] — the Redis-class model (Figures 8–10, 13): TCP-grade
//!   latency with syscall costs, an fsync-priced append-only "backup", and
//!   event-loop fsync batching;
//! * [`lincheck`] — a Wing–Gong linearizability checker used by the
//!   property tests to validate histories with injected crashes;
//! * [`nemesis`] / [`fleet`] — the chaos fleet: composable seed-driven
//!   fault-injection episodes and the per-seed runner that composes them
//!   against open-loop load, heals, and checks the full history (a failing
//!   seed is a one-line `CHAOS_SEED=<n>` repro — see `tests/chaos.rs`);
//! * [`tempdir`] — self-cleaning scratch directories for the durability
//!   scenarios (the power-loss nemesis restarts a [`SimCluster`] built with
//!   [`SimCluster::build_durable`] from real on-disk AOFs and journals).

pub mod cluster;
pub mod fleet;
pub mod lincheck;
pub mod nemesis;
pub mod redis;
pub mod time;

// The scratch-directory guard lives in `curp-storage` (shared with its own
// AOF tests); re-exported here because the durability *scenarios* — the
// power-loss nemesis, its tests and examples — are driven from this crate.
pub use curp_storage::tempdir;

pub use cluster::{Mode, RamcloudParams, RunResult, SimCluster};
pub use curp_storage::TempDir;
pub use fleet::{
    drawn_episode_count, repro_line, repro_line_episodes, run_chaos, run_chaos_seed, shrink,
    shrink_chaos_seed, ChaosConfig, ChaosReport,
};
pub use lincheck::{
    check_linearizable, failing_keys_detailed, Counterexample, HistOp, HistoryEvent,
};
pub use nemesis::{
    draw_nemesis, draw_overlay, draw_schedule, Episode, Nemesis, ScheduleEvent, ScheduleLog,
    Topology,
};
pub use redis::{RedisMode, RedisParams, RedisSim};
pub use time::{run_sim, to_virtual_ns, to_virtual_us, vns, vus};
