//! # CURP — Consistent Unordered Replication Protocol
//!
//! A Rust implementation of *"Exploiting Commutativity For Practical Fast
//! Replication"* (Seo Jin Park and John Ousterhout, NSDI 2019): linearizable
//! update operations in **1 RTT** by separating durability from ordering.
//!
//! Clients record each update on `f` *witnesses* in parallel with sending it
//! to the master; the master executes speculatively and replies before
//! replicating to backups. Witnesses and masters independently enforce that
//! all speculative state is *commutative*, so crash recovery can replay
//! witness contents in any order. See `DESIGN.md` for the architecture and
//! `EXPERIMENTS.md` for the reproduction of every figure in the paper.
//!
//! ## Quick start
//!
//! ```
//! use curp::sim::{run_sim, SimCluster, Mode, RamcloudParams};
//! use curp::proto::op::{Op, OpResult};
//! use bytes::Bytes;
//!
//! let written = run_sim(async {
//!     let cluster = SimCluster::build(Mode::Curp, RamcloudParams::new(3)).await;
//!     let client = cluster.client(0).await;
//!     client
//!         .update(Op::Put { key: Bytes::from("hello"), value: Bytes::from("world") })
//!         .await
//!         .unwrap()
//! });
//! assert_eq!(written, OpResult::Written { version: 1 });
//! ```
//!
//! ## Pipelined throughput
//!
//! The one-op-at-a-time client above is round-trip bound. For throughput,
//! wrap it in [`core::client::PipelinedClient`]: a windowed, batching front
//! end that keeps many operations in flight per partition, flushes them as
//! single-write `Batch` frames, and routes by key hash across all masters.
//!
//! ```
//! use curp::core::client::{PipelineConfig, PipelinedClient};
//! use curp::sim::{run_sim, SimCluster, Mode, RamcloudParams};
//! use curp::proto::op::{Op, OpResult};
//! use bytes::Bytes;
//!
//! run_sim(async {
//!     let cluster =
//!         SimCluster::build_partitioned(Mode::Curp, RamcloudParams::new(3), 4).await;
//!     let pipe = PipelinedClient::new(cluster.client(0).await, PipelineConfig::default());
//!     let mut completions = Vec::new();
//!     for i in 0..64 {
//!         let op = Op::Put { key: Bytes::from(format!("k{i}")), value: Bytes::from("v") };
//!         // Suspends only when the target partition's window (16) is full.
//!         completions.push(pipe.submit(op).await.unwrap());
//!     }
//!     for c in completions {
//!         assert!(matches!(c.await.unwrap(), OpResult::Written { .. }));
//!     }
//! });
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`proto`] | wire format, operations, RPC messages |
//! | [`transport`] | `RpcClient`/`RpcHandler`, simulated + TCP transports |
//! | [`storage`] | log-position-tracking object store, append-only file |
//! | [`rifl`] | exactly-once RPC semantics (leases, completion records) |
//! | [`witness`] | the set-associative witness cache and server |
//! | [`core`] | master, backup, client, coordinator, recovery |
//! | [`consensus`] | the §A.2 consensus extension (Raft-style + witnesses) |
//! | [`sim`] | calibrated cluster models and the linearizability checker |
//! | [`workload`] | YCSB/Zipfian generators, latency recorders, and the open-loop load driver |

pub use curp_consensus as consensus;
pub use curp_core as core;
pub use curp_proto as proto;
pub use curp_rifl as rifl;
pub use curp_sim as sim;
pub use curp_storage as storage;
pub use curp_transport as transport;
pub use curp_witness as witness;
pub use curp_workload as workload;
