//! Async read/write extension traits for the TCP halves.

#![allow(async_fn_in_trait)]

use crate::net::{poll_read, poll_write, OwnedReadHalf, OwnedWriteHalf};
use std::io;

/// Async read methods (`read`, `read_exact`).
pub trait AsyncReadExt {
    /// Reads up to `buf.len()` bytes; `Ok(0)` means EOF.
    async fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Fills `buf` completely or fails with `UnexpectedEof`.
    async fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<usize>;
}

impl AsyncReadExt for OwnedReadHalf {
    async fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let stream = std::sync::Arc::clone(&self.inner);
        std::future::poll_fn(move |cx| poll_read(&stream, cx, buf)).await
    }

    async fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let total = buf.len();
        let mut filled = 0;
        while filled < total {
            let n = self.read(&mut buf[filled..]).await?;
            if n == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "early eof"));
            }
            filled += n;
        }
        Ok(total)
    }
}

/// Async write methods (`write_all`, `flush`, `shutdown`).
pub trait AsyncWriteExt {
    /// Writes the entire buffer.
    async fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Flushes buffered data (no-op: the socket is unbuffered).
    async fn flush(&mut self) -> io::Result<()>;

    /// Shuts down the write direction.
    async fn shutdown(&mut self) -> io::Result<()>;
}

impl AsyncWriteExt for OwnedWriteHalf {
    async fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let stream = std::sync::Arc::clone(&self.inner);
        let mut written = 0;
        while written < buf.len() {
            let n = std::future::poll_fn(|cx| poll_write(&stream, cx, &buf[written..])).await?;
            if n == 0 {
                return Err(io::Error::new(io::ErrorKind::WriteZero, "write returned 0"));
            }
            written += n;
        }
        Ok(())
    }

    async fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    async fn shutdown(&mut self) -> io::Result<()> {
        self.inner.shutdown(std::net::Shutdown::Write)
    }
}
