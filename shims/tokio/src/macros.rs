//! Support functions and macro definitions for `select!` and `join!`.

use std::future::Future;
use std::pin::pin;
use std::task::Poll;

/// Outcome of a two-way select.
pub enum Either2<A, B> {
    /// First branch completed.
    A(A),
    /// Second branch completed.
    B(B),
}

/// Outcome of a three-way select.
pub enum Either3<A, B, C> {
    /// First branch completed.
    A(A),
    /// Second branch completed.
    B(B),
    /// Third branch completed.
    C(C),
}

/// Polls both futures, returning the first to complete (left-biased).
pub async fn select2<FA: Future, FB: Future>(fa: FA, fb: FB) -> Either2<FA::Output, FB::Output> {
    let mut fa = pin!(fa);
    let mut fb = pin!(fb);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = fa.as_mut().poll(cx) {
            return Poll::Ready(Either2::A(v));
        }
        if let Poll::Ready(v) = fb.as_mut().poll(cx) {
            return Poll::Ready(Either2::B(v));
        }
        Poll::Pending
    })
    .await
}

/// Polls three futures, returning the first to complete (left-biased).
pub async fn select3<FA: Future, FB: Future, FC: Future>(
    fa: FA,
    fb: FB,
    fc: FC,
) -> Either3<FA::Output, FB::Output, FC::Output> {
    let mut fa = pin!(fa);
    let mut fb = pin!(fb);
    let mut fc = pin!(fc);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = fa.as_mut().poll(cx) {
            return Poll::Ready(Either3::A(v));
        }
        if let Poll::Ready(v) = fb.as_mut().poll(cx) {
            return Poll::Ready(Either3::B(v));
        }
        if let Poll::Ready(v) = fc.as_mut().poll(cx) {
            return Poll::Ready(Either3::C(v));
        }
        Poll::Pending
    })
    .await
}

/// Awaits both futures concurrently.
pub async fn join2<FA: Future, FB: Future>(fa: FA, fb: FB) -> (FA::Output, FB::Output) {
    let mut fa = pin!(fa);
    let mut fb = pin!(fb);
    let mut ra = None;
    let mut rb = None;
    std::future::poll_fn(move |cx| {
        if ra.is_none() {
            if let Poll::Ready(v) = fa.as_mut().poll(cx) {
                ra = Some(v);
            }
        }
        if rb.is_none() {
            if let Poll::Ready(v) = fb.as_mut().poll(cx) {
                rb = Some(v);
            }
        }
        if ra.is_some() && rb.is_some() {
            Poll::Ready((ra.take().unwrap(), rb.take().unwrap()))
        } else {
            Poll::Pending
        }
    })
    .await
}

/// Awaits three futures concurrently.
pub async fn join3<FA: Future, FB: Future, FC: Future>(
    fa: FA,
    fb: FB,
    fc: FC,
) -> (FA::Output, FB::Output, FC::Output) {
    let ((a, b), c) = join2(join2(fa, fb), fc).await;
    (a, b, c)
}

/// Waits on multiple branches, running the body of whichever completes
/// first (left-biased poll order; losing branches are dropped).
///
/// Like tokio's, each arm is `pattern = future => body` where a block body
/// needs no trailing comma; two- and three-branch forms are supported.
#[macro_export]
macro_rules! select {
    // Two branches: each body either a `{...}` block (no comma) or an
    // expression followed by a comma (optional after the last arm).
    ($p1:pat = $f1:expr => $b1:block $p2:pat = $f2:expr => $b2:block) => {
        $crate::__select2!($p1 = $f1 => $b1, $p2 = $f2 => $b2)
    };
    ($p1:pat = $f1:expr => $b1:block $p2:pat = $f2:expr => $b2:expr $(,)?) => {
        $crate::__select2!($p1 = $f1 => $b1, $p2 = $f2 => $b2)
    };
    ($p1:pat = $f1:expr => $b1:expr, $p2:pat = $f2:expr => $b2:block) => {
        $crate::__select2!($p1 = $f1 => $b1, $p2 = $f2 => $b2)
    };
    ($p1:pat = $f1:expr => $b1:expr, $p2:pat = $f2:expr => $b2:expr $(,)?) => {
        $crate::__select2!($p1 = $f1 => $b1, $p2 = $f2 => $b2)
    };
    // Three branches: block bodies or comma-separated expression bodies.
    ($p1:pat = $f1:expr => $b1:block $p2:pat = $f2:expr => $b2:block $p3:pat = $f3:expr => $b3:block) => {
        $crate::__select3!($p1 = $f1 => $b1, $p2 = $f2 => $b2, $p3 = $f3 => $b3)
    };
    ($p1:pat = $f1:expr => $b1:expr, $p2:pat = $f2:expr => $b2:expr, $p3:pat = $f3:expr => $b3:expr $(,)?) => {
        $crate::__select3!($p1 = $f1 => $b1, $p2 = $f2 => $b2, $p3 = $f3 => $b3)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __select2 {
    ($p1:pat = $f1:expr => $b1:expr, $p2:pat = $f2:expr => $b2:expr) => {
        match $crate::macros::select2($f1, $f2).await {
            $crate::macros::Either2::A($p1) => $b1,
            $crate::macros::Either2::B($p2) => $b2,
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __select3 {
    ($p1:pat = $f1:expr => $b1:expr, $p2:pat = $f2:expr => $b2:expr, $p3:pat = $f3:expr => $b3:expr) => {
        match $crate::macros::select3($f1, $f2, $f3).await {
            $crate::macros::Either3::A($p1) => $b1,
            $crate::macros::Either3::B($p2) => $b2,
            $crate::macros::Either3::C($p3) => $b3,
        }
    };
}

/// Awaits all branches concurrently, yielding a tuple of outputs.
#[macro_export]
macro_rules! join {
    ($f1:expr, $f2:expr $(,)?) => {
        $crate::macros::join2($f1, $f2).await
    };
    ($f1:expr, $f2:expr, $f3:expr $(,)?) => {
        $crate::macros::join3($f1, $f2, $f3).await
    };
}
