//! Task spawning and join handles.

use std::fmt;
use std::future::Future;
use std::panic::AssertUnwindSafe;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// Error returned when a spawned task panicked.
pub struct JoinError {
    msg: String,
}

impl JoinError {
    /// Whether the task failed via panic (always true in this shim).
    pub fn is_panic(&self) -> bool {
        true
    }
}

impl fmt::Debug for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JoinError::Panic({:?})", self.msg)
    }
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task panicked: {}", self.msg)
    }
}

impl std::error::Error for JoinError {}

enum JoinState<T> {
    Running(Option<Waker>),
    Done(Result<T, JoinError>),
    Taken,
}

/// An owned permission to await a spawned task's output.
pub struct JoinHandle<T> {
    state: Arc<Mutex<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Whether the task has completed.
    pub fn is_finished(&self) -> bool {
        !matches!(*self.state.lock().unwrap(), JoinState::Running(_))
    }

    /// Cancellation is not supported by the shim; the task runs on.
    pub fn abort(&self) {}
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.state.lock().unwrap();
        match std::mem::replace(&mut *st, JoinState::Taken) {
            JoinState::Running(_) => {
                *st = JoinState::Running(Some(cx.waker().clone()));
                Poll::Pending
            }
            JoinState::Done(result) => Poll::Ready(result),
            JoinState::Taken => panic!("JoinHandle polled after completion"),
        }
    }
}

/// Spawns a future onto the current runtime, returning a [`JoinHandle`].
///
/// Panics inside the task are caught and surfaced through the handle, like
/// real tokio.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let state = Arc::new(Mutex::new(JoinState::Running(None)));
    let state2 = Arc::clone(&state);
    let wrapped = async move {
        let result = CatchUnwind { fut: AssertUnwindSafe(fut) }.await;
        let result = result.map_err(|p| JoinError { msg: panic_message(&p) });
        let mut st = state2.lock().unwrap();
        if let JoinState::Running(Some(w)) = std::mem::replace(&mut *st, JoinState::Done(result)) {
            w.wake();
        }
    };
    crate::rt::spawn_on_current(Box::pin(wrapped));
    JoinHandle { state }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Adapter: catches panics from each `poll` of the inner future.
struct CatchUnwind<F> {
    fut: AssertUnwindSafe<F>,
}

impl<F: Future> Future for CatchUnwind<F> {
    type Output = Result<F::Output, Box<dyn std::any::Any + Send>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: structural pinning of the only field.
        let fut = unsafe { self.map_unchecked_mut(|s| &mut s.fut.0) };
        match std::panic::catch_unwind(AssertUnwindSafe(|| fut.poll(cx))) {
            Ok(Poll::Pending) => Poll::Pending,
            Ok(Poll::Ready(v)) => Poll::Ready(Ok(v)),
            Err(panic) => Poll::Ready(Err(panic)),
        }
    }
}

/// Yields execution back to the scheduler once.
pub async fn yield_now() {
    struct YieldNow(bool);
    impl Future for YieldNow {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.0 {
                Poll::Ready(())
            } else {
                self.0 = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }
    YieldNow(false).await
}
