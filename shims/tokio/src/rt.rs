//! The executor core: a single-threaded, cooperatively scheduled runtime
//! with a timer wheel that can run on real time or on a paused virtual
//! clock (auto-advancing to the next timer deadline when idle, like tokio's
//! `start_paused`).

use std::cell::RefCell;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

thread_local! {
    static CURRENT: RefCell<Vec<Arc<Core>>> = const { RefCell::new(Vec::new()) };
}

/// Returns the runtime the calling task is executing on.
pub(crate) fn current() -> Arc<Core> {
    CURRENT.with(|c| {
        c.borrow().last().cloned().expect(
            "no tokio runtime is running on this thread \
             (spawn/sleep must be called from within Runtime::block_on)",
        )
    })
}

#[allow(dead_code)]
pub(crate) fn try_current() -> Option<Arc<Core>> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

struct TimerEntry {
    deadline: Duration,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline.
        other.deadline.cmp(&self.deadline).then(other.seq.cmp(&self.seq))
    }
}

struct CoreState {
    ready: VecDeque<Arc<Task>>,
    timers: BinaryHeap<TimerEntry>,
    /// Virtual now; meaningful while `paused`.
    vnow: Duration,
    paused: bool,
    timer_seq: u64,
}

/// Shared state of one runtime.
pub(crate) struct Core {
    state: Mutex<CoreState>,
    cv: Condvar,
    epoch: std::time::Instant,
}

impl Core {
    pub(crate) fn new(start_paused: bool) -> Arc<Core> {
        Arc::new(Core {
            state: Mutex::new(CoreState {
                ready: VecDeque::new(),
                timers: BinaryHeap::new(),
                vnow: Duration::ZERO,
                paused: start_paused,
                timer_seq: 0,
            }),
            cv: Condvar::new(),
            epoch: std::time::Instant::now(),
        })
    }

    /// Current time on this runtime's clock, as an offset from its epoch.
    pub(crate) fn now(&self) -> Duration {
        let st = self.state.lock().unwrap();
        if st.paused {
            st.vnow
        } else {
            self.epoch.elapsed()
        }
    }

    /// Pauses the clock at its current reading.
    pub(crate) fn pause(&self) {
        let mut st = self.state.lock().unwrap();
        if !st.paused {
            st.vnow = self.epoch.elapsed();
            st.paused = true;
        }
    }

    /// Advances the paused clock by `dur`, firing any timers it passes.
    pub(crate) fn advance(&self, dur: Duration) {
        let mut st = self.state.lock().unwrap();
        assert!(st.paused, "time::advance requires a paused clock");
        st.vnow += dur;
        let now = st.vnow;
        let expired = Self::take_expired(&mut st, now);
        drop(st);
        wake_all(expired);
        self.cv.notify_all();
    }

    pub(crate) fn register_timer(&self, deadline: Duration, waker: Waker) {
        let mut st = self.state.lock().unwrap();
        st.timer_seq += 1;
        let seq = st.timer_seq;
        st.timers.push(TimerEntry { deadline, seq, waker });
    }

    fn enqueue(&self, task: Arc<Task>) {
        self.state.lock().unwrap().ready.push_back(task);
        self.cv.notify_all();
    }

    pub(crate) fn notify(&self) {
        self.cv.notify_all();
    }

    /// Pops every timer due at `now`. The caller must wake the returned
    /// wakers **after** releasing the state lock: a woken task immediately
    /// re-enters `enqueue`, which takes the same lock.
    fn take_expired(st: &mut CoreState, now: Duration) -> Vec<Waker> {
        let mut expired = Vec::new();
        while st.timers.peek().is_some_and(|t| t.deadline <= now) {
            expired.push(st.timers.pop().unwrap().waker);
        }
        expired
    }

    /// Runs `fut` to completion, driving spawned tasks and timers.
    pub(crate) fn block_on<F: Future>(self: &Arc<Self>, fut: F) -> F::Output {
        CURRENT.with(|c| c.borrow_mut().push(Arc::clone(self)));
        // Ensure the runtime is popped even if the future panics.
        struct PopGuard;
        impl Drop for PopGuard {
            fn drop(&mut self) {
                CURRENT.with(|c| {
                    c.borrow_mut().pop();
                });
            }
        }
        let _guard = PopGuard;

        let main_woken =
            Arc::new(MainWaker { flag: AtomicBool::new(true), core: Arc::downgrade(self) });
        let waker = Waker::from(Arc::clone(&main_woken));
        let mut cx = Context::from_waker(&waker);
        let mut fut = std::pin::pin!(fut);

        loop {
            // 1. Poll the main future whenever it has been woken.
            if main_woken.flag.swap(false, Ordering::AcqRel) {
                if let Poll::Ready(v) = fut.as_mut().poll(&mut cx) {
                    return v;
                }
            }

            // 2. Run one ready task.
            let task = self.state.lock().unwrap().ready.pop_front();
            if let Some(task) = task {
                task.run();
                continue;
            }

            // 3. Fire due timers.
            {
                let mut st = self.state.lock().unwrap();
                let now = if st.paused { st.vnow } else { self.epoch.elapsed() };
                let expired = Self::take_expired(&mut st, now);
                drop(st);
                if !expired.is_empty() {
                    wake_all(expired);
                    continue;
                }
            }
            if main_woken.flag.load(Ordering::Acquire) {
                continue;
            }

            // 4. Idle: advance virtual time or park until the next event.
            let mut st = self.state.lock().unwrap();
            if !st.ready.is_empty() || main_woken.flag.load(Ordering::Acquire) {
                continue; // something arrived while re-locking
            }
            if st.paused {
                if let Some(next) = st.timers.peek().map(|t| t.deadline) {
                    // Jump the virtual clock straight to the next deadline.
                    st.vnow = st.vnow.max(next);
                    let now = st.vnow;
                    let expired = Self::take_expired(&mut st, now);
                    drop(st);
                    wake_all(expired);
                    continue;
                }
                // No timers: wait for an external wake (cross-thread waker).
                let _ = self.cv.wait_timeout(st, Duration::from_millis(10)).unwrap();
            } else {
                let now = self.epoch.elapsed();
                let wait = match st.timers.peek() {
                    Some(t) => t.deadline.saturating_sub(now).min(Duration::from_millis(50)),
                    None => Duration::from_millis(50),
                };
                let _ = self.cv.wait_timeout(st, wait.max(Duration::from_micros(100))).unwrap();
            }
        }
    }
}

fn wake_all(wakers: Vec<Waker>) {
    for w in wakers {
        w.wake();
    }
}

struct MainWaker {
    flag: AtomicBool,
    core: Weak<Core>,
}

impl Wake for MainWaker {
    fn wake(self: Arc<Self>) {
        self.flag.store(true, Ordering::Release);
        if let Some(core) = self.core.upgrade() {
            core.notify();
        }
    }
}

/// A spawned task: a future owned by the runtime, woken by reference.
pub(crate) struct Task {
    fut: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
    core: Weak<Core>,
    queued: AtomicBool,
}

impl Task {
    fn run(self: Arc<Self>) {
        self.queued.store(false, Ordering::Release);
        let mut slot = self.fut.lock().unwrap();
        let Some(mut fut) = slot.take() else { return };
        drop(slot); // the future may re-entrantly wake itself
        let waker = Waker::from(Arc::clone(&self));
        let mut cx = Context::from_waker(&waker);
        if fut.as_mut().poll(&mut cx).is_pending() {
            *self.fut.lock().unwrap() = Some(fut);
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if let Some(core) = self.core.upgrade() {
            if !self.queued.swap(true, Ordering::AcqRel) {
                core.enqueue(Arc::clone(&self));
            } else {
                core.notify();
            }
        }
    }
}

/// Spawns `fut` onto the current runtime (must be inside `block_on`).
pub(crate) fn spawn_on_current(fut: Pin<Box<dyn Future<Output = ()> + Send>>) {
    let core = current();
    let task = Arc::new(Task {
        fut: Mutex::new(Some(fut)),
        core: Arc::downgrade(&core),
        queued: AtomicBool::new(true),
    });
    core.enqueue(task);
}
