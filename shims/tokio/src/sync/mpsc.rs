//! Multi-producer single-consumer channels (unbounded flavor).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::task::{Poll, Waker};

struct Shared<T> {
    queue: VecDeque<T>,
    rx_waker: Option<Waker>,
    tx_count: usize,
    rx_alive: bool,
}

impl<T> Shared<T> {
    fn wake_rx(&mut self) {
        if let Some(w) = self.rx_waker.take() {
            w.wake();
        }
    }
}

/// Error: the receiver was dropped.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("channel closed")
    }
}

/// Sending half of an unbounded channel.
pub struct UnboundedSender<T> {
    shared: Arc<Mutex<Shared<T>>>,
}

impl<T> Clone for UnboundedSender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().unwrap().tx_count += 1;
        UnboundedSender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> UnboundedSender<T> {
    /// Queues `value`; fails only if the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut sh = self.shared.lock().unwrap();
        if !sh.rx_alive {
            return Err(SendError(value));
        }
        sh.queue.push_back(value);
        sh.wake_rx();
        Ok(())
    }

    /// Whether the receiving half has been dropped.
    pub fn is_closed(&self) -> bool {
        !self.shared.lock().unwrap().rx_alive
    }
}

impl<T> Drop for UnboundedSender<T> {
    fn drop(&mut self) {
        let mut sh = self.shared.lock().unwrap();
        sh.tx_count -= 1;
        if sh.tx_count == 0 {
            sh.wake_rx();
        }
    }
}

/// Receiving half of an unbounded channel.
pub struct UnboundedReceiver<T> {
    shared: Arc<Mutex<Shared<T>>>,
}

impl<T> UnboundedReceiver<T> {
    /// Awaits the next value; `None` once all senders are gone and the
    /// queue is drained.
    pub async fn recv(&mut self) -> Option<T> {
        std::future::poll_fn(|cx| {
            let mut sh = self.shared.lock().unwrap();
            if let Some(v) = sh.queue.pop_front() {
                return Poll::Ready(Some(v));
            }
            if sh.tx_count == 0 {
                return Poll::Ready(None);
            }
            sh.rx_waker = Some(cx.waker().clone());
            Poll::Pending
        })
        .await
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        let mut sh = self.shared.lock().unwrap();
        match sh.queue.pop_front() {
            Some(v) => Ok(v),
            None if sh.tx_count == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }
}

impl<T> Drop for UnboundedReceiver<T> {
    fn drop(&mut self) {
        self.shared.lock().unwrap().rx_alive = false;
    }
}

/// Error returned by [`UnboundedReceiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Queue is currently empty.
    Empty,
    /// All senders dropped and the queue is drained.
    Disconnected,
}

/// Creates an unbounded sender/receiver pair.
pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
    let shared = Arc::new(Mutex::new(Shared {
        queue: VecDeque::new(),
        rx_waker: None,
        tx_count: 1,
        rx_alive: true,
    }));
    (UnboundedSender { shared: Arc::clone(&shared) }, UnboundedReceiver { shared })
}
