//! Asynchronous mutex whose guard can be held across await points.

use std::cell::UnsafeCell;
use std::fmt;
use std::future::Future;
use std::ops::{Deref, DerefMut};
use std::pin::Pin;
use std::sync::Mutex as StdMutex;
use std::task::{Context, Poll, Waker};

struct LockState {
    locked: bool,
    waiters: Vec<Waker>,
}

/// An async mutex: `lock().await` suspends instead of blocking.
pub struct Mutex<T: ?Sized> {
    state: StdMutex<LockState>,
    cell: UnsafeCell<T>,
}

// SAFETY: access to `cell` is serialized by `state.locked`.
unsafe impl<T: Send + ?Sized> Send for Mutex<T> {}
unsafe impl<T: Send + ?Sized> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            state: StdMutex::new(LockState { locked: false, waiters: Vec::new() }),
            cell: UnsafeCell::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.cell.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, suspending the task until it is available.
    pub fn lock(&self) -> LockFuture<'_, T> {
        LockFuture { mutex: self }
    }

    /// Attempts to acquire the lock immediately.
    pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, TryLockError> {
        let mut st = self.state.lock().unwrap();
        if st.locked {
            Err(TryLockError(()))
        } else {
            st.locked = true;
            Ok(MutexGuard { mutex: self })
        }
    }

    fn unlock(&self) {
        let mut st = self.state.lock().unwrap();
        st.locked = false;
        // Wake everyone; losers re-queue. Fine at this scale, and immune to
        // the lost-wakeup hazard of waking a cancelled waiter.
        for w in st.waiters.drain(..) {
            w.wake();
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Mutex { .. }")
    }
}

/// Error returned by [`Mutex::try_lock`].
#[derive(Debug)]
pub struct TryLockError(());

impl fmt::Display for TryLockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("mutex would block")
    }
}

impl std::error::Error for TryLockError {}

/// Future returned by [`Mutex::lock`].
pub struct LockFuture<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
}

impl<'a, T: ?Sized> Future for LockFuture<'a, T> {
    type Output = MutexGuard<'a, T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.mutex.state.lock().unwrap();
        if !st.locked {
            st.locked = true;
            Poll::Ready(MutexGuard { mutex: self.mutex })
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// RAII guard; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive access.
        unsafe { &*self.mutex.cell.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard proves exclusive access.
        unsafe { &mut *self.mutex.cell.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.unlock();
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}
