//! Edge-triggered task notification.

use std::collections::HashSet;
use std::future::Future;
use std::pin::Pin;
use std::sync::Mutex;
use std::task::{Context, Poll, Waker};

#[derive(Default)]
struct State {
    /// One stored notification (notify_one with no waiter).
    permit: bool,
    next_id: u64,
    /// Registered waiters, FIFO. Each `Notified` future holds one entry at
    /// most and removes it on drop, so this cannot accumulate stale wakers.
    waiters: Vec<(u64, Waker)>,
    /// Waiters that have been handed a notification but not yet polled it.
    notified: HashSet<u64>,
}

/// Notifies one or all waiting tasks; stores at most one pending permit.
#[derive(Default)]
pub struct Notify {
    state: Mutex<State>,
}

impl Notify {
    /// Creates a notifier with no stored permit.
    pub fn new() -> Notify {
        Notify::default()
    }

    /// Completes when notified; consumes a stored permit if present.
    pub fn notified(&self) -> Notified<'_> {
        Notified { notify: self, id: None }
    }

    /// Wakes the longest-waiting task, or stores a permit for the next
    /// `notified()`. Consecutive unconsumed notifications coalesce into a
    /// single permit, like tokio.
    pub fn notify_one(&self) {
        let mut st = self.state.lock().unwrap();
        if st.waiters.is_empty() {
            st.permit = true;
        } else {
            let (id, waker) = st.waiters.remove(0);
            st.notified.insert(id);
            drop(st);
            waker.wake();
        }
    }

    /// Completes every currently waiting `notified()` without storing a
    /// permit for future ones.
    pub fn notify_waiters(&self) {
        let mut st = self.state.lock().unwrap();
        let drained: Vec<_> = st.waiters.drain(..).collect();
        for (id, _) in &drained {
            st.notified.insert(*id);
        }
        drop(st);
        for (_, waker) in drained {
            waker.wake();
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified<'a> {
    notify: &'a Notify,
    /// Waiter id once registered.
    id: Option<u64>,
}

impl Future for Notified<'_> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.notify.state.lock().unwrap();
        match self.id {
            Some(id) => {
                if st.notified.remove(&id) {
                    self.id = None;
                    Poll::Ready(())
                } else {
                    // Refresh the stored waker in place (no growth).
                    if let Some(entry) = st.waiters.iter_mut().find(|(wid, _)| *wid == id) {
                        entry.1 = cx.waker().clone();
                    }
                    Poll::Pending
                }
            }
            None => {
                if st.permit {
                    st.permit = false;
                    Poll::Ready(())
                } else {
                    let id = st.next_id;
                    st.next_id += 1;
                    st.waiters.push((id, cx.waker().clone()));
                    self.id = Some(id);
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for Notified<'_> {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        let mut st = self.notify.state.lock().unwrap();
        if let Some(pos) = st.waiters.iter().position(|(wid, _)| *wid == id) {
            st.waiters.remove(pos);
        } else if st.notified.remove(&id) {
            // We were handed a notification but never consumed it: pass it
            // to the next waiter (or bank it), like tokio.
            if st.waiters.is_empty() {
                st.permit = true;
            } else {
                let (nid, waker) = st.waiters.remove(0);
                st.notified.insert(nid);
                drop(st);
                waker.wake();
            }
        }
    }
}
