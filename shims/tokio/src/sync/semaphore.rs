//! Counting semaphore with owned permits.

use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

struct State {
    permits: usize,
    waiters: Vec<Waker>,
}

/// A counting semaphore.
pub struct Semaphore {
    state: Mutex<State>,
}

/// Error: the semaphore was closed (never happens in this shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcquireError(());

impl fmt::Display for AcquireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("semaphore closed")
    }
}

impl std::error::Error for AcquireError {}

impl Semaphore {
    /// Creates a semaphore with `permits` available permits.
    pub fn new(permits: usize) -> Semaphore {
        Semaphore { state: Mutex::new(State { permits, waiters: Vec::new() }) }
    }

    /// Number of currently available permits.
    pub fn available_permits(&self) -> usize {
        self.state.lock().unwrap().permits
    }

    /// Adds `n` permits, waking waiters.
    pub fn add_permits(&self, n: usize) {
        let mut st = self.state.lock().unwrap();
        st.permits += n;
        for w in st.waiters.drain(..) {
            w.wake();
        }
    }

    /// Acquires one permit tied to the `Arc`, suspending until available.
    pub fn acquire_owned(self: Arc<Self>) -> AcquireOwned {
        AcquireOwned { sem: self }
    }
}

/// Future returned by [`Semaphore::acquire_owned`].
pub struct AcquireOwned {
    sem: Arc<Semaphore>,
}

impl Future for AcquireOwned {
    type Output = Result<OwnedSemaphorePermit, AcquireError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.sem.state.lock().unwrap();
        if st.permits > 0 {
            st.permits -= 1;
            drop(st);
            Poll::Ready(Ok(OwnedSemaphorePermit { sem: Arc::clone(&self.sem) }))
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// RAII permit; returns itself to the semaphore on drop.
pub struct OwnedSemaphorePermit {
    sem: Arc<Semaphore>,
}

impl Drop for OwnedSemaphorePermit {
    fn drop(&mut self) {
        self.sem.add_permits(1);
    }
}
