//! One-shot value channel.

use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

struct Shared<T> {
    value: Option<T>,
    tx_dropped: bool,
    rx_dropped: bool,
    waker: Option<Waker>,
}

/// Sends the single value.
pub struct Sender<T> {
    shared: Arc<Mutex<Shared<T>>>,
}

/// Receives the single value; a future in its own right.
pub struct Receiver<T> {
    shared: Arc<Mutex<Shared<T>>>,
}

/// Error: the sender was dropped without sending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError(());

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("oneshot sender dropped")
    }
}

impl std::error::Error for RecvError {}

pub mod error {
    //! Error types.
    pub use super::RecvError;

    /// Error returned by `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No value yet.
        Empty,
        /// Sender dropped without sending.
        Closed,
    }
}

/// Creates a sender/receiver pair.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Mutex::new(Shared {
        value: None,
        tx_dropped: false,
        rx_dropped: false,
        waker: None,
    }));
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Sends `value`; returns it back if the receiver is gone.
    pub fn send(self, value: T) -> Result<(), T> {
        let mut sh = self.shared.lock().unwrap();
        if sh.rx_dropped {
            return Err(value);
        }
        sh.value = Some(value);
        if let Some(w) = sh.waker.take() {
            w.wake();
        }
        Ok(())
    }

    /// Whether the receiving half has been dropped.
    pub fn is_closed(&self) -> bool {
        self.shared.lock().unwrap().rx_dropped
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut sh = self.shared.lock().unwrap();
        sh.tx_dropped = true;
        if let Some(w) = sh.waker.take() {
            w.wake();
        }
    }
}

impl<T> Receiver<T> {
    /// Non-blocking poll for the value.
    pub fn try_recv(&mut self) -> Result<T, error::TryRecvError> {
        let mut sh = self.shared.lock().unwrap();
        match sh.value.take() {
            Some(v) => Ok(v),
            None if sh.tx_dropped => Err(error::TryRecvError::Closed),
            None => Err(error::TryRecvError::Empty),
        }
    }
}

impl<T> Future for Receiver<T> {
    type Output = Result<T, RecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut sh = self.shared.lock().unwrap();
        if let Some(v) = sh.value.take() {
            return Poll::Ready(Ok(v));
        }
        if sh.tx_dropped {
            return Poll::Ready(Err(RecvError(())));
        }
        sh.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.lock().unwrap().rx_dropped = true;
    }
}
