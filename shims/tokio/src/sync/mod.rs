//! Synchronization primitives mirroring `tokio::sync`.

pub mod mpsc;
pub mod oneshot;
pub mod watch;

mod mutex;
mod notify;
mod semaphore;

pub use mutex::{Mutex, MutexGuard, TryLockError};
pub use notify::Notify;
pub use semaphore::{AcquireError, OwnedSemaphorePermit, Semaphore};
