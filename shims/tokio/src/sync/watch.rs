//! Watch channel: single value, many observers, change notification.

use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex, MutexGuard};
use std::task::{Poll, Waker};

struct Shared<T> {
    state: Mutex<State<T>>,
}

struct State<T> {
    value: T,
    version: u64,
    tx_count: usize,
    waiters: Vec<Waker>,
}

impl<T> Shared<T> {
    fn wake_all(state: &mut State<T>) {
        for w in state.waiters.drain(..) {
            w.wake();
        }
    }
}

/// Error: all receivers gone (send) or all senders gone (changed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("watch channel closed")
    }
}

/// Error: every sender was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError(());

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("watch senders dropped")
    }
}

impl std::error::Error for RecvError {}

/// Sending half.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
    seen: u64,
}

/// Borrowed view of the current value.
pub struct Ref<'a, T> {
    guard: MutexGuard<'a, State<T>>,
}

impl<T> Deref for Ref<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard.value
    }
}

/// Creates a watch channel holding `initial`.
pub fn channel<T>(initial: T) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State { value: initial, version: 0, tx_count: 1, waiters: Vec::new() }),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared, seen: 0 })
}

impl<T> Sender<T> {
    /// Replaces the value and notifies all receivers.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().unwrap();
        st.value = value;
        st.version += 1;
        Shared::wake_all(&mut st);
        Ok(())
    }

    /// Mutates the value in place and notifies all receivers.
    pub fn send_modify<F: FnOnce(&mut T)>(&self, modify: F) {
        let mut st = self.shared.state.lock().unwrap();
        modify(&mut st.value);
        st.version += 1;
        Shared::wake_all(&mut st);
    }

    /// A new receiver observing the current value as already seen.
    pub fn subscribe(&self) -> Receiver<T> {
        let st = self.shared.state.lock().unwrap();
        Receiver { shared: Arc::clone(&self.shared), seen: st.version }
    }

    /// Borrows the current value.
    pub fn borrow(&self) -> Ref<'_, T> {
        Ref { guard: self.shared.state.lock().unwrap() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.tx_count -= 1;
        if st.tx_count == 0 {
            Shared::wake_all(&mut st);
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().tx_count += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver { shared: Arc::clone(&self.shared), seen: self.seen }
    }
}

impl<T> Receiver<T> {
    /// Borrows the current value without marking it seen.
    pub fn borrow(&self) -> Ref<'_, T> {
        Ref { guard: self.shared.state.lock().unwrap() }
    }

    /// Borrows the current value and marks it seen.
    pub fn borrow_and_update(&mut self) -> Ref<'_, T> {
        let guard = self.shared.state.lock().unwrap();
        self.seen = guard.version;
        Ref { guard }
    }

    /// Completes when the value changes relative to the last seen version;
    /// `Err` once every sender is gone.
    pub async fn changed(&mut self) -> Result<(), RecvError> {
        std::future::poll_fn(|cx| {
            let mut st = self.shared.state.lock().unwrap();
            if st.version != self.seen {
                self.seen = st.version;
                return Poll::Ready(Ok(()));
            }
            if st.tx_count == 0 {
                return Poll::Ready(Err(RecvError(())));
            }
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        })
        .await
    }
}
