//! Timers on the runtime clock: real time normally, virtual time under
//! `start_paused` (where the executor jumps the clock to the next deadline
//! whenever it goes idle — microsecond-scale simulations run instantly).

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

pub use std::time::Duration;

/// A measurement of the runtime's clock.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Instant {
    /// Offset from the owning runtime's epoch.
    offset: Duration,
}

impl Instant {
    /// The current reading of the runtime clock (virtual under
    /// `start_paused`).
    pub fn now() -> Instant {
        Instant { offset: crate::rt::current().now() }
    }

    /// Time elapsed since this instant.
    pub fn elapsed(&self) -> Duration {
        Instant::now().offset.saturating_sub(self.offset)
    }

    /// Saturating difference between instants.
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        self.offset.saturating_sub(earlier.offset)
    }

    /// Checked difference between instants.
    pub fn checked_duration_since(&self, earlier: Instant) -> Option<Duration> {
        self.offset.checked_sub(earlier.offset)
    }

    /// Checked addition.
    pub fn checked_add(&self, dur: Duration) -> Option<Instant> {
        self.offset.checked_add(dur).map(|offset| Instant { offset })
    }
}

impl std::ops::Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant { offset: self.offset + rhs }
    }
}

impl std::ops::AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.offset += rhs;
    }
}

impl std::ops::Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant { offset: self.offset.saturating_sub(rhs) }
    }
}

impl std::ops::Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        self.offset.saturating_sub(rhs.offset)
    }
}

/// Future returned by [`sleep`] / [`sleep_until`].
pub struct Sleep {
    deadline: Instant,
    /// The waker the timer heap currently holds for us; re-registering on
    /// every poll would flood the heap with duplicates.
    registered: Option<std::task::Waker>,
}

impl Sleep {
    /// The instant this sleep completes.
    pub fn deadline(&self) -> Instant {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        let core = crate::rt::current();
        if core.now() >= this.deadline.offset {
            Poll::Ready(())
        } else {
            // Register at most one heap entry per (deadline, waker); only a
            // waker change (the future moved to another task) re-registers.
            match &this.registered {
                Some(w) if w.will_wake(cx.waker()) => {}
                _ => {
                    core.register_timer(this.deadline.offset, cx.waker().clone());
                    this.registered = Some(cx.waker().clone());
                }
            }
            Poll::Pending
        }
    }
}

/// Completes `dur` from now on the runtime clock.
pub fn sleep(dur: Duration) -> Sleep {
    Sleep { deadline: Instant::now() + dur, registered: None }
}

/// Completes at `deadline` on the runtime clock.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { deadline, registered: None }
}

/// Error returned by [`timeout`] when the deadline fires first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed(());

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("deadline has elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Future returned by [`timeout`].
pub struct Timeout<F> {
    fut: F,
    sleep: Sleep,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: structural pinning of `fut`; `sleep` is Unpin.
        let this = unsafe { self.get_unchecked_mut() };
        let fut = unsafe { Pin::new_unchecked(&mut this.fut) };
        if let Poll::Ready(v) = fut.poll(cx) {
            return Poll::Ready(Ok(v));
        }
        match Pin::new(&mut this.sleep).poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(Elapsed(()))),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Awaits `fut` for at most `dur`; `Err(Elapsed)` if the timer wins.
pub fn timeout<F: Future>(dur: Duration, fut: F) -> Timeout<F> {
    Timeout { fut, sleep: sleep(dur) }
}

/// Pauses the runtime clock at its current reading (idempotent).
pub fn pause() {
    crate::rt::current().pause();
}

/// Advances the paused clock by `dur`, firing timers along the way.
pub fn advance(dur: Duration) {
    crate::rt::current().advance(dur);
}
