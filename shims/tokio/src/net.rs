//! Async TCP on top of nonblocking `std::net` sockets.
//!
//! Readiness model: a future that hits `WouldBlock` parks its waker in a
//! process-global list; a lazily started ticker thread wakes all parked
//! wakers every 500 µs, prompting a re-poll. Crude next to epoll, but
//! dependency-free and plenty for localhost test clusters.

use std::io::{self, Read, Write};
use std::net::SocketAddr;
use std::sync::{Arc, Mutex, OnceLock};
use std::task::{Context, Poll, Waker};

struct IoReactor {
    wakers: Mutex<Vec<Waker>>,
    /// Signals the ticker that the waker list became non-empty.
    nonempty: std::sync::Condvar,
}

fn io_reactor() -> &'static IoReactor {
    static REACTOR: OnceLock<IoReactor> = OnceLock::new();
    static TICKER: OnceLock<()> = OnceLock::new();
    let reactor = REACTOR
        .get_or_init(|| IoReactor { wakers: Mutex::new(Vec::new()), nonempty: Default::default() });
    TICKER.get_or_init(|| {
        std::thread::Builder::new()
            .name("tokio-shim-io-ticker".into())
            .spawn(|| {
                let r = io_reactor();
                loop {
                    // Park (no CPU) until some future registers a waker.
                    let mut guard = r.wakers.lock().unwrap();
                    while guard.is_empty() {
                        guard = r.nonempty.wait(guard).unwrap();
                    }
                    drop(guard);
                    std::thread::sleep(std::time::Duration::from_micros(500));
                    let drained: Vec<Waker> = r.wakers.lock().unwrap().drain(..).collect();
                    for w in drained {
                        w.wake();
                    }
                }
            })
            .expect("spawn io ticker");
    });
    reactor
}

fn park_on_would_block(cx: &mut Context<'_>) {
    let r = io_reactor();
    r.wakers.lock().unwrap().push(cx.waker().clone());
    r.nonempty.notify_one();
}

/// A TCP listener accepting connections asynchronously.
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Binds `addr` (nonblocking).
    pub async fn bind(addr: impl std::net::ToSocketAddrs) -> io::Result<TcpListener> {
        let inner = std::net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Accepts the next inbound connection.
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        std::future::poll_fn(|cx| match self.inner.accept() {
            Ok((stream, peer)) => {
                stream.set_nonblocking(true)?;
                Poll::Ready(Ok((TcpStream { inner: Arc::new(stream) }, peer)))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                park_on_would_block(cx);
                Poll::Pending
            }
            Err(e) => Poll::Ready(Err(e)),
        })
        .await
    }
}

/// A TCP connection.
pub struct TcpStream {
    inner: Arc<std::net::TcpStream>,
}

impl TcpStream {
    /// Connects to `addr`.
    ///
    /// The handshake itself is performed blocking (localhost connects
    /// resolve in microseconds); the resulting stream is nonblocking.
    pub async fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nonblocking(true)?;
        Ok(TcpStream { inner: Arc::new(stream) })
    }

    /// Disables (or enables) Nagle's algorithm.
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    /// The peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// Splits into independently owned read and write halves sharing the
    /// underlying socket.
    pub fn into_split(self) -> (OwnedReadHalf, OwnedWriteHalf) {
        (OwnedReadHalf { inner: Arc::clone(&self.inner) }, OwnedWriteHalf { inner: self.inner })
    }
}

/// Owned read half of a [`TcpStream`].
pub struct OwnedReadHalf {
    pub(crate) inner: Arc<std::net::TcpStream>,
}

/// Owned write half of a [`TcpStream`].
pub struct OwnedWriteHalf {
    pub(crate) inner: Arc<std::net::TcpStream>,
}

impl Drop for OwnedWriteHalf {
    fn drop(&mut self) {
        // Match tokio: dropping the write half sends FIN.
        let _ = self.inner.shutdown(std::net::Shutdown::Write);
    }
}

pub(crate) fn poll_read(
    stream: &std::net::TcpStream,
    cx: &mut Context<'_>,
    buf: &mut [u8],
) -> Poll<io::Result<usize>> {
    loop {
        match stream.read_nonblocking(buf) {
            Ok(n) => return Poll::Ready(Ok(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                park_on_would_block(cx);
                return Poll::Pending;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Poll::Ready(Err(e)),
        }
    }
}

pub(crate) fn poll_write(
    stream: &std::net::TcpStream,
    cx: &mut Context<'_>,
    buf: &[u8],
) -> Poll<io::Result<usize>> {
    loop {
        match stream.write_nonblocking(buf) {
            Ok(n) => return Poll::Ready(Ok(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                park_on_would_block(cx);
                return Poll::Pending;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Poll::Ready(Err(e)),
        }
    }
}

/// `Read`/`Write` by shared reference (std supports this for `TcpStream`).
trait NonblockingSocket {
    fn read_nonblocking(&self, buf: &mut [u8]) -> io::Result<usize>;
    fn write_nonblocking(&self, buf: &[u8]) -> io::Result<usize>;
}

impl NonblockingSocket for std::net::TcpStream {
    fn read_nonblocking(&self, buf: &mut [u8]) -> io::Result<usize> {
        (&mut &*self).read(buf)
    }
    fn write_nonblocking(&self, buf: &[u8]) -> io::Result<usize> {
        (&mut &*self).write(buf)
    }
}
