//! Runtime construction. Both flavors execute on the calling thread; the
//! "multi thread" flavor differs only in name (cooperative scheduling is
//! enough for every workload in this repository, and it keeps the paused
//! virtual clock deterministic).

use crate::rt::Core;
use std::future::Future;
use std::sync::Arc;

/// Builds a [`Runtime`].
pub struct Builder {
    start_paused: bool,
}

impl Builder {
    /// A runtime driving tasks on the current thread.
    pub fn new_current_thread() -> Builder {
        Builder { start_paused: false }
    }

    /// Accepted for API compatibility; behaves like `new_current_thread`.
    pub fn new_multi_thread() -> Builder {
        Builder { start_paused: false }
    }

    /// Enables the timer (always on in this shim).
    pub fn enable_time(&mut self) -> &mut Self {
        self
    }

    /// Enables IO (always on in this shim).
    pub fn enable_io(&mut self) -> &mut Self {
        self
    }

    /// Enables everything (always on in this shim).
    pub fn enable_all(&mut self) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim is single-threaded.
    pub fn worker_threads(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Starts the runtime with its clock paused at zero; timers auto-advance
    /// virtual time when the runtime is otherwise idle.
    pub fn start_paused(&mut self, paused: bool) -> &mut Self {
        self.start_paused = paused;
        self
    }

    /// Builds the runtime.
    pub fn build(&mut self) -> std::io::Result<Runtime> {
        Ok(Runtime { core: Core::new(self.start_paused) })
    }
}

/// A handle to an executor instance.
pub struct Runtime {
    core: Arc<Core>,
}

impl Runtime {
    /// A default (real-clock) runtime.
    pub fn new() -> std::io::Result<Runtime> {
        Builder::new_current_thread().build()
    }

    /// Runs `fut` to completion, driving spawned tasks and timers.
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        self.core.block_on(fut)
    }
}
