//! Offline shim for the [`tokio`](https://crates.io/crates/tokio) API subset
//! this workspace uses: a **single-threaded cooperative runtime** with a
//! timer wheel that supports `start_paused` virtual time (auto-advancing to
//! the next deadline when idle — the property the CURP simulations depend
//! on), `spawn`/`JoinHandle`, the `sync` primitives (`oneshot`, `mpsc`,
//! `watch`, async `Mutex`, `Notify`, `Semaphore`), `select!`/`join!`,
//! `#[tokio::test]`/`#[tokio::main]`, and async TCP over nonblocking std
//! sockets. See the workspace README's "Dependency policy" section.
//!
//! Deviations from real tokio, by design:
//! * every flavor runs on the calling thread (`multi_thread` is accepted
//!   and ignored) — tasks interleave cooperatively, never in parallel;
//! * `select!` polls branches in declaration order (left-biased);
//! * TCP readiness is tick-polled (~500 µs), not epoll-driven.

pub mod io;
pub mod net;
pub mod runtime;
pub mod sync;
pub mod task;
pub mod time;

#[doc(hidden)]
pub mod macros;

mod rt;

pub use task::spawn;

// `#[tokio::test]` / `#[tokio::main]` attribute macros.
pub use tokio_macros::{main, test};
