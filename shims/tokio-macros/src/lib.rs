//! Offline shim for tokio's attribute macros, written against the bare
//! `proc_macro` API (no syn/quote available offline). The transformation is
//! purely structural: strip `async` from the annotated function, then wrap
//! its body in a fresh shim runtime's `block_on`.
//!
//! Recognized arguments: `start_paused = true` (paused virtual clock);
//! `flavor = "..."` and `worker_threads = N` are accepted and ignored (the
//! shim runtime is always single-threaded).

use proc_macro::{TokenStream, TokenTree};

/// `#[tokio::test]`: an async test run to completion on a shim runtime.
#[proc_macro_attribute]
pub fn test(attr: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(attr, item, true)
}

/// `#[tokio::main]`: an async entry point run on a shim runtime.
#[proc_macro_attribute]
pub fn main(attr: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(attr, item, false)
}

fn rewrite(attr: TokenStream, item: TokenStream, is_test: bool) -> TokenStream {
    let start_paused = attr.to_string().replace(' ', "").contains("start_paused=true");

    // The item is `<attrs/vis> async fn name(args) <-> ret> { body }`: the
    // final token tree is the body block; everything before it is the
    // signature, from which we drop the `async` keyword.
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let (body, signature) = match tokens.split_last() {
        Some((TokenTree::Group(body), sig)) => (body.to_string(), sig),
        _ => panic!("#[tokio::test]/#[tokio::main] expects a function with a body"),
    };
    // Re-collect into a TokenStream so `to_string` renders joint punctuation
    // (`->`, `::`) without inner spaces.
    let signature: TokenStream = signature
        .iter()
        .filter(|t| !matches!(t, TokenTree::Ident(i) if i.to_string() == "async"))
        .cloned()
        .collect();
    let signature = signature.to_string();

    let test_attr = if is_test { "#[::core::prelude::v1::test]" } else { "" };
    format!(
        "{test_attr}\n{signature} {{\n\
             let __rt = tokio::runtime::Builder::new_current_thread()\n\
                 .enable_time()\n\
                 .start_paused({start_paused})\n\
                 .build()\n\
                 .expect(\"build tokio shim runtime\");\n\
             __rt.block_on(async move {body})\n\
         }}"
    )
    .parse()
    .expect("tokio attribute shim produced invalid Rust")
}
