//! Offline shim for the [`proptest`](https://crates.io/crates/proptest) API
//! subset this workspace uses: the `proptest!` macro, `Strategy` combinators
//! (`prop_map`, tuples, `prop_oneof!`, `Just`, `prop::collection::vec`,
//! `prop::option::of`, `any::<T>()`), and `prop_assert*`. Cases are generated
//! from a deterministic seeded RNG; there is **no shrinking** — a failing
//! case reports its seed and iteration instead. See the workspace README's
//! "Dependency policy" section.

use rand::rngs::StdRng;

/// Number of cases per property when no [`ProptestConfig`] is given.
pub const DEFAULT_CASES: u32 = 256;

/// Test-runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: DEFAULT_CASES }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error raised by `prop_assert*`; carries the failure message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Result type threaded through property bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `f` (retries, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8, J / 9);

/// String literals are regex strategies in proptest; this shim understands
/// the `[class]{min,max}` shape (e.g. `"[a-z ]{0,32}"`) with `a-z` ranges
/// and literal characters in the class. Any other pattern generates itself
/// verbatim.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        use rand::Rng;
        let parsed = (|| {
            let rest = self.strip_prefix('[')?;
            let (class, rest) = rest.split_once(']')?;
            let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
            let (min, max) = counts.split_once(',')?;
            let (min, max) = (min.parse::<usize>().ok()?, max.parse::<usize>().ok()?);
            let mut alphabet = Vec::new();
            let chars: Vec<char> = class.chars().collect();
            let mut i = 0;
            while i < chars.len() {
                if i + 2 < chars.len() && chars[i + 1] == '-' {
                    for c in chars[i]..=chars[i + 2] {
                        alphabet.push(c);
                    }
                    i += 3;
                } else {
                    alphabet.push(chars[i]);
                    i += 1;
                }
            }
            Some((alphabet, min, max))
        })();
        match parsed {
            Some((alphabet, min, max)) if !alphabet.is_empty() => {
                let n = rng.gen_range(min..=max);
                (0..n).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect()
            }
            _ => (*self).to_string(),
        }
    }
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                <$t as rand::Standard>::sample(rng)
            }
        }
    )+};
}

impl_arbitrary_via_standard!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64, f32
);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Ranges are strategies for their element type (uniform sampling).
impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

/// Weighted choice among boxed variants (backs `prop_oneof!`).
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a weighted union; panics if `variants` is empty or all
    /// weights are zero.
    pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        let total_weight: u64 = variants.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs a positive total weight");
        Union { variants, total_weight }
    }

    /// Builds a uniform union; panics if `variants` is empty.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        Union::new_weighted(variants.into_iter().map(|s| (1, s)).collect())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strat) in &self.variants {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights sum to total_weight")
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let n =
                if self.len.is_empty() { self.len.start } else { rng.gen_range(self.len.clone()) };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{StdRng, Strategy};

    /// Strategy for `Option`s (75% `Some`, matching proptest's default).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some(inner)` 75% of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            use rand::Rng;
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    //! Everything a property test module needs.
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

pub mod prop {
    //! Namespace mirror: `prop::collection`, `prop::option`.
    pub use super::collection;
    pub use super::option;
}

// `prop::...` paths also appear unqualified through the prelude.
pub use prop as prop_ns;

#[doc(hidden)]
pub mod runner {
    //! Drives property bodies from the `proptest!` macro expansion.

    use super::*;
    use rand::SeedableRng;

    /// Runs `body` for `config.cases` deterministic cases.
    pub fn run(
        test_name: &str,
        config: &ProptestConfig,
        mut body: impl FnMut(&mut StdRng) -> TestCaseResult,
    ) {
        // Deterministic per-test seed: stable across runs, different between
        // tests; PROPTEST_SEED overrides for reproduction.
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse::<u64>().expect("PROPTEST_SEED must be a u64"),
            Err(_) => test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
            }),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        for case in 0..config.cases {
            if let Err(TestCaseError(msg)) = body(&mut rng) {
                panic!(
                    "property '{test_name}' failed at case {case}/{} (seed {seed}): {msg}",
                    config.cases
                );
            }
        }
    }
}

/// Declares property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    // Leading `#![proptest_config(...)]` applies to every test in the block.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::runner::run(stringify!($name), &config, |__rng| {
                    $(let $pat = $crate::Strategy::generate(&$strat, __rng);)+
                    $body
                    Ok(())
                });
            }
        )+
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Choice among strategies producing the same value type; arms are either
/// all `strategy` (uniform) or all `weight => strategy`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn tuples_and_maps(v in prop::collection::vec(any::<u8>(), 0..16),
                           (a, b) in (any::<u64>(), any::<bool>())) {
            prop_assert!(v.len() < 16);
            let doubled = (a, b);
            prop_assert_eq!(doubled.0, a);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn oneof_covers_variants(x in prop_oneof![Just(1usize), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_and_seed() {
        proptest::runner::run("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            Err(proptest::TestCaseError("boom".into()))
        });
    }
}
