//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! API subset this workspace uses. It runs each benchmark closure for the
//! configured measurement time and reports mean ns/iter on stdout — no
//! statistics, plots, or baselines, but the same source-level API, so the
//! benches compile and produce usable numbers offline. See the workspace
//! README's "Dependency policy" section.
//!
//! Two harness extensions support the repo's per-PR perf trajectory
//! (EXPERIMENTS.md, "Perf trajectory"):
//!
//! * **`--smoke`** (or env `BENCH_SMOKE=1`): clamps warm-up/measurement
//!   times to a few milliseconds per benchmark so a full run finishes in
//!   CI-friendly seconds. Numbers are noisier but the same code paths run.
//! * **`--json=PATH`** (or env `BENCH_JSON=PATH`): after all groups run,
//!   `criterion_main!` writes every measurement to `PATH` as a small JSON
//!   document (`BENCH_micro.json` in CI), making the perf trajectory
//!   machine-diffable across PRs.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness-level options parsed once from argv / environment.
struct HarnessOpts {
    smoke: bool,
    json: Option<String>,
}

fn harness_opts() -> &'static HarnessOpts {
    static OPTS: OnceLock<HarnessOpts> = OnceLock::new();
    OPTS.get_or_init(|| {
        let mut smoke = std::env::var_os("BENCH_SMOKE").is_some_and(|v| v != "0");
        let mut json = std::env::var("BENCH_JSON").ok().filter(|p| !p.is_empty());
        for arg in std::env::args() {
            if arg == "--smoke" {
                smoke = true;
            } else if let Some(path) = arg.strip_prefix("--json=") {
                json = Some(path.to_string());
            }
        }
        HarnessOpts { smoke, json }
    })
}

/// One finished measurement, collected for the JSON report.
struct BenchRecord {
    id: String,
    ns_per_iter: f64,
    iters: u64,
}

fn records() -> &'static Mutex<Vec<BenchRecord>> {
    static RECORDS: OnceLock<Mutex<Vec<BenchRecord>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes the collected measurements to the `--json=PATH` / `BENCH_JSON`
/// target, if one was given. Called by [`criterion_main!`] after every
/// group has run; calling it with no JSON target is a no-op.
pub fn write_json_report() {
    let Some(path) = &harness_opts().json else { return };
    let records = records().lock().expect("bench record lock poisoned");
    let mut doc = String::from("{\n  \"harness\": \"criterion-shim\",\n");
    doc.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"results\": [\n",
        if harness_opts().smoke { "smoke" } else { "full" }
    ));
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 < records.len() { "," } else { "" };
        doc.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}{sep}\n",
            json_escape(&r.id),
            r.ns_per_iter,
            r.iters
        ));
    }
    doc.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, doc) {
        eprintln!("bench: failed to write {path}: {e}");
    } else {
        println!("bench\treport\t{path}");
    }
}

/// How `iter_batched` amortizes setup cost (accepted, not acted on).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Benchmark driver: times closures handed to [`Criterion::bench_function`].
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs `f` with a [`Bencher`] and prints the mean iteration time.
    ///
    /// In `--smoke` mode the configured times are clamped to a few
    /// milliseconds so the whole suite completes in seconds.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let smoke = harness_opts().smoke;
        let mut b = Bencher {
            warm_up_time: if smoke {
                self.warm_up_time.min(Duration::from_millis(5))
            } else {
                self.warm_up_time
            },
            measurement_time: if smoke {
                self.measurement_time.min(Duration::from_millis(20))
            } else {
                self.measurement_time
            },
            sample_size: if smoke { self.sample_size.min(10) } else { self.sample_size },
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(r) => {
                let ns = r.total.as_nanos() as f64 / r.iters.max(1) as f64;
                println!("bench\t{id}\t{ns:.1} ns/iter\t({} iters)", r.iters);
                records().lock().expect("bench record lock poisoned").push(BenchRecord {
                    id: id.to_string(),
                    ns_per_iter: ns,
                    iters: r.iters,
                });
            }
            None => println!("bench\t{id}\t<no measurement>"),
        }
        self
    }
}

struct Measurement {
    total: Duration,
    iters: u64,
}

/// How many timed samples each benchmark takes; the **minimum** per-iter
/// sample is reported. On shared CI runners the mean of one long batch
/// absorbs scheduler interference from neighboring tenants (±15% run to
/// run was observed); the min-of-k estimator converges on the code's
/// intrinsic cost, which is what a cross-PR perf trajectory needs.
pub const MEASURE_SAMPLES: u64 = 5;

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Iteration budget for the whole measurement phase, calibrated from
    /// an observed warm-up per-iter cost.
    fn budget_iters(&self, per_iter_ns: u64) -> u64 {
        (self.measurement_time.as_nanos() as u64 / per_iter_ns.max(1))
            .clamp(self.sample_size as u64, 10_000_000)
    }

    fn record_min_sample(&mut self, samples: impl IntoIterator<Item = Duration>, iters: u64) {
        let best = samples.into_iter().min().expect("at least one sample");
        self.result = Some(Measurement { total: best, iters });
    }

    /// Times repeated calls of `routine`: [`MEASURE_SAMPLES`] equal batches,
    /// reporting the fastest batch (see [`MEASURE_SAMPLES`]).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also calibrates how many iterations fit the budget.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_nanos() as u64 / warm_iters.max(1);
        let per_sample = (self.budget_iters(per_iter) / MEASURE_SAMPLES).max(1);

        let samples = (0..MEASURE_SAMPLES).map(|_| {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            start.elapsed()
        });
        self.record_min_sample(samples, per_sample);
    }

    /// Hands the iteration count to `routine`, which runs that many
    /// iterations *its own way* and reports the elapsed [`Duration`] —
    /// real criterion's escape hatch for measurements the harness cannot
    /// time itself (multi-threaded sections, virtual-time accounting).
    ///
    /// Calibration runs small batches until the warm-up budget is spent
    /// (wall clock), sizing the measured batches from the durations the
    /// routine itself reports; the fastest of [`MEASURE_SAMPLES`] batches
    /// is reported.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let warm_start = Instant::now();
        let mut reported = Duration::ZERO;
        let mut warm_iters: u64 = 0;
        let mut batch: u64 = 1;
        while warm_start.elapsed() < self.warm_up_time {
            reported += routine(batch);
            warm_iters += batch;
            batch = (batch * 2).min(1024);
        }
        let per_iter = (reported.as_nanos() as u64 / warm_iters.max(1)).max(1);
        let per_sample = (self.budget_iters(per_iter) / MEASURE_SAMPLES).max(1);
        let samples: Vec<Duration> = (0..MEASURE_SAMPLES).map(|_| routine(per_sample)).collect();
        self.record_min_sample(samples, per_sample);
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement. Like [`iter`](Self::iter), the
    /// fastest of [`MEASURE_SAMPLES`] batches is reported.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_nanos() as u64 / warm_iters.max(1);
        let per_sample = (self.budget_iters(per_iter) / MEASURE_SAMPLES).max(1);

        let samples = (0..MEASURE_SAMPLES).map(|_| {
            let mut total = Duration::ZERO;
            for _ in 0..per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            total
        });
        self.record_min_sample(samples, per_sample);
    }
}

/// Declares a benchmark group: either `criterion_group!(name, fn1, fn2)` or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running the listed groups, then emits the
/// JSON report if `--json=PATH` / `BENCH_JSON` was given.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Harness args Cargo passes (`--bench`, filters) are parsed by
            // the shim itself (`--smoke`, `--json=PATH`) or ignored.
            $($group();)+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut x = 0u64;
        c.bench_function("noop", |b| b.iter(|| x = x.wrapping_add(1)));
        assert!(x > 0);
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_escape("plain_id"), "plain_id");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\u0009here");
    }

    #[test]
    fn json_report_without_target_is_noop() {
        // No --json / BENCH_JSON in the test environment: must not panic
        // or create files.
        write_json_report();
    }

    #[test]
    fn iter_custom_reports_routine_duration() {
        let mut c = Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                // Report 100 ns per iteration regardless of wall time.
                Duration::from_nanos(100 * iters)
            })
        });
        // ns_per_iter must reflect the reported (not wall) duration.
        let records = records().lock().unwrap();
        let rec = records.iter().rev().find(|r| r.id == "custom").unwrap();
        assert!((rec.ns_per_iter - 100.0).abs() < 1.0, "got {}", rec.ns_per_iter);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
