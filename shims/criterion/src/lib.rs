//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! API subset this workspace uses. It runs each benchmark closure for the
//! configured measurement time and reports mean ns/iter on stdout — no
//! statistics, plots, or baselines, but the same source-level API, so the
//! benches compile and produce usable numbers offline. See the workspace
//! README's "Dependency policy" section.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, not acted on).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Benchmark driver: times closures handed to [`Criterion::bench_function`].
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs `f` with a [`Bencher`] and prints the mean iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(r) => {
                let ns = r.total.as_nanos() as f64 / r.iters.max(1) as f64;
                println!("bench\t{id}\t{ns:.1} ns/iter\t({} iters)", r.iters);
            }
            None => println!("bench\t{id}\t<no measurement>"),
        }
        self
    }
}

struct Measurement {
    total: Duration,
    iters: u64,
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also calibrates how many iterations fit the budget.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_nanos() as u64 / warm_iters.max(1);
        let budget_iters = (self.measurement_time.as_nanos() as u64 / per_iter.max(1))
            .clamp(self.sample_size as u64, 10_000_000);

        let start = Instant::now();
        for _ in 0..budget_iters {
            black_box(routine());
        }
        self.result = Some(Measurement { total: start.elapsed(), iters: budget_iters });
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_nanos() as u64 / warm_iters.max(1);
        let budget_iters = (self.measurement_time.as_nanos() as u64 / per_iter.max(1))
            .clamp(self.sample_size as u64, 10_000_000);

        let mut total = Duration::ZERO;
        for _ in 0..budget_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.result = Some(Measurement { total, iters: budget_iters });
    }
}

/// Declares a benchmark group: either `criterion_group!(name, fn1, fn2)` or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Swallow the harness args Cargo passes (`--bench`, filters).
            let _ = std::env::args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut x = 0u64;
        c.bench_function("noop", |b| b.iter(|| x = x.wrapping_add(1)));
        assert!(x > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
