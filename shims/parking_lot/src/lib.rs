//! Offline shim for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! API subset this workspace uses: non-poisoning `Mutex` and `RwLock` built
//! on `std::sync`. See the workspace README's "Dependency policy" section.
//!
//! # Lock auditing (`lock_audit` feature)
//!
//! With the `lock_audit` feature enabled, locks constructed through
//! [`Mutex::ranked`], [`Mutex::ranked_leaf`] or [`RwLock::ranked`] carry a
//! rank and a name, and every blocking acquisition is validated against the
//! workspace lock-order discipline (see `DESIGN.md` invariant 6): ranks must
//! strictly ascend within a thread, nothing may be acquired while a strict
//! leaf is held, and a global acquisition-order graph panics on cycles.
//! Without the feature every constructor and acquisition compiles down to
//! the plain `std::sync` call — zero cost in release builds.

use std::fmt;
use std::ops::{Deref, DerefMut};

#[cfg(feature = "lock_audit")]
mod audit;

#[cfg(feature = "lock_audit")]
pub use audit::held_locks;

#[cfg(feature = "lock_audit")]
use audit::{AuditHold, LockMeta};

/// Whether this build of the shim has the runtime lock-order auditor
/// compiled in. Lets tests skip audit-only assertions when run standalone
/// (e.g. `cargo test -p <crate>` without the facade's dev-dependencies).
pub const fn lock_audit_enabled() -> bool {
    cfg!(feature = "lock_audit")
}

/// A non-poisoning mutual-exclusion lock (API-compatible subset).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lock_audit")]
    meta: LockMeta,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`. The lock is *unranked*:
    /// invisible to the `lock_audit` auditor. Production crates should use
    /// [`Mutex::ranked`] instead (enforced by `curp-lint`).
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "lock_audit")]
            meta: LockMeta::UNRANKED,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates a mutex with a lock-order rank and a diagnostic name.
    /// Under `lock_audit`, acquiring it while holding a lock of equal or
    /// higher rank panics; without the feature it is identical to `new`.
    pub const fn ranked(rank: u32, name: &'static str, value: T) -> Self {
        #[cfg(not(feature = "lock_audit"))]
        let _ = (rank, name);
        Mutex {
            #[cfg(feature = "lock_audit")]
            meta: LockMeta::ranked(rank, name),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates a ranked mutex that is additionally a *strict leaf*: under
    /// `lock_audit`, acquiring any ranked lock while this one is held
    /// panics regardless of rank.
    pub const fn ranked_leaf(rank: u32, name: &'static str, value: T) -> Self {
        #[cfg(not(feature = "lock_audit"))]
        let _ = (rank, name);
        Mutex {
            #[cfg(feature = "lock_audit")]
            meta: LockMeta::ranked_leaf(rank, name),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lock_audit")]
        audit::check_before_blocking(&self.meta);
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            inner,
            #[cfg(feature = "lock_audit")]
            _audit: audit::push_acquired(&self.meta, false),
        }
    }

    /// Attempts to acquire the lock without blocking. Exempt from the
    /// rank check under `lock_audit` (it cannot deadlock), and blocking
    /// acquisitions made while a try-acquired lock is on top of the held
    /// stack are rank-exempt too — but every such ordering is recorded in
    /// the global acquisition-order graph, so two threads probing locks in
    /// opposite orders still panic on the edge that closes the cycle.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            inner,
            #[cfg(feature = "lock_audit")]
            _audit: audit::push_acquired(&self.meta, true),
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
#[must_use = "a lock guard that is immediately dropped releases the lock"]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
    #[cfg(feature = "lock_audit")]
    _audit: AuditHold,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A non-poisoning reader-writer lock (API-compatible subset).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lock_audit")]
    meta: LockMeta,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`. Unranked; see [`Mutex::new`].
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "lock_audit")]
            meta: LockMeta::UNRANKED,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Creates a lock with a lock-order rank and a diagnostic name; see
    /// [`Mutex::ranked`]. Read and write acquisitions are audited alike.
    pub const fn ranked(rank: u32, name: &'static str, value: T) -> Self {
        #[cfg(not(feature = "lock_audit"))]
        let _ = (rank, name);
        RwLock {
            #[cfg(feature = "lock_audit")]
            meta: LockMeta::ranked(rank, name),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lock_audit")]
        audit::check_before_blocking(&self.meta);
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard {
            inner,
            #[cfg(feature = "lock_audit")]
            _audit: audit::push_acquired(&self.meta, false),
        }
    }

    /// Acquires an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lock_audit")]
        audit::check_before_blocking(&self.meta);
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard {
            inner,
            #[cfg(feature = "lock_audit")]
            _audit: audit::push_acquired(&self.meta, false),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// RAII guard returned by [`RwLock::read`].
#[must_use = "a lock guard that is immediately dropped releases the lock"]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    #[cfg(feature = "lock_audit")]
    _audit: AuditHold,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
#[must_use = "a lock guard that is immediately dropped releases the lock"]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    #[cfg(feature = "lock_audit")]
    _audit: AuditHold,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn ranked_ascending_ok() {
        let a = Mutex::ranked(0x10, "test.a", 1);
        let b = Mutex::ranked(0x20, "test.b", 2);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
        if lock_audit_enabled() {
            #[cfg(feature = "lock_audit")]
            assert_eq!(held_locks(), vec![(0x10, "test.a"), (0x20, "test.b")]);
        }
    }

    #[cfg(feature = "lock_audit")]
    #[test]
    #[should_panic(expected = "rank inversion")]
    fn ranked_descending_panics() {
        let a = Mutex::ranked(0x10, "test.low", 1);
        let b = Mutex::ranked(0x20, "test.high", 2);
        let _gb = b.lock();
        let _ga = a.lock();
    }

    #[cfg(feature = "lock_audit")]
    #[test]
    #[should_panic(expected = "strict-leaf")]
    fn leaf_blocks_everything() {
        let leaf = Mutex::ranked_leaf(0x10, "test.leaf", 1);
        let other = Mutex::ranked(0x20, "test.other", 2);
        let _gl = leaf.lock();
        let _go = other.lock();
    }

    #[cfg(feature = "lock_audit")]
    #[test]
    fn out_of_order_drop_pops_correct_entry() {
        let a = Mutex::ranked(0x11, "test.ooo.a", 1);
        let b = Mutex::ranked(0x21, "test.ooo.b", 2);
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // release outer first
        assert_eq!(held_locks(), vec![(0x21, "test.ooo.b")]);
        drop(gb);
        assert_eq!(held_locks(), vec![]);
    }
}
