//! Offline shim for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! API subset this workspace uses: non-poisoning `Mutex` and `RwLock` built
//! on `std::sync`. See the workspace README's "Dependency policy" section.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A non-poisoning mutual-exclusion lock (API-compatible subset).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard { inner: e.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A non-poisoning reader-writer lock (API-compatible subset).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquires an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
