//! Runtime lock-order auditing, compiled in only under the `lock_audit`
//! feature.
//!
//! Two independent checks run on every acquisition of a *ranked* lock
//! (constructed via [`Mutex::ranked`]/[`RwLock::ranked`] and friends):
//!
//! 1. **Rank monotonicity** — a thread-local stack records the ranked locks
//!    the current thread holds. A new acquisition must carry a rank strictly
//!    greater than the top of the stack, and nothing may be acquired while a
//!    strict-leaf lock is held. Violations panic *before* the thread blocks
//!    on the inner lock, so an ordering bug surfaces as a deterministic
//!    panic instead of a hung test.
//! 2. **Acquisition-order graph** — a global digraph keyed on
//!    `(rank, name)` records every observed "held A, acquired B" edge with
//!    the full held-stack provenance of its first sighting. Inserting an
//!    edge that closes a cycle panics with the cycle path and each edge's
//!    provenance. This catches cross-thread inversions that per-thread rank
//!    checks cannot see (e.g. orderings only reachable through `try_lock`,
//!    which never blocks and is therefore exempt from the rank check).
//!
//! Unranked locks (plain `Mutex::new`) are invisible to the auditor; the
//! static pass in `curp-lint` is what keeps production crates from minting
//! new unranked locks.
//!
//! `std::sync` primitives are used directly here on purpose: this module
//! *is* part of the parking_lot shim, the one place they are allowed.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Mutex as StdMutex, OnceLock};

/// Identity a lock carries from construction: its rank, display name and
/// whether it is a strict leaf (nothing may be acquired while it is held).
#[derive(Clone, Copy, Debug)]
pub(crate) struct LockMeta {
    pub(crate) rank: u32,
    pub(crate) name: &'static str,
    pub(crate) leaf: bool,
    pub(crate) tracked: bool,
}

impl LockMeta {
    pub(crate) const UNRANKED: LockMeta =
        LockMeta { rank: 0, name: "<unranked>", leaf: false, tracked: false };

    pub(crate) const fn ranked(rank: u32, name: &'static str) -> Self {
        LockMeta { rank, name, leaf: false, tracked: true }
    }

    pub(crate) const fn ranked_leaf(rank: u32, name: &'static str) -> Self {
        LockMeta { rank, name, leaf: true, tracked: true }
    }
}

impl Default for LockMeta {
    fn default() -> Self {
        LockMeta::UNRANKED
    }
}

/// One entry on the per-thread held-lock stack.
#[derive(Clone, Copy)]
struct Held {
    rank: u32,
    name: &'static str,
    leaf: bool,
    /// Acquired through `try_lock`: later blocking acquisitions on this
    /// thread skip the rank check (but still feed the cycle graph).
    by_try: bool,
    /// Unique per-acquisition token so out-of-order guard drops pop the
    /// right entry even when the same lock name appears twice.
    seq: u64,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    static NEXT_SEQ: RefCell<u64> = const { RefCell::new(0) };
}

/// RAII token embedded in lock guards: pops its held-stack entry on drop.
/// Not `Send`, matching the `std::sync` guards it travels with.
pub(crate) struct AuditHold {
    seq: Option<u64>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for AuditHold {
    fn drop(&mut self) {
        if let Some(seq) = self.seq {
            HELD.with(|h| {
                let mut h = h.borrow_mut();
                if let Some(pos) = h.iter().rposition(|e| e.seq == seq) {
                    h.remove(pos);
                }
            });
        }
    }
}

/// Validates an impending *blocking* acquisition against the current
/// thread's held stack and the global order graph. Panics on violation.
/// Must be called before blocking on the inner lock.
pub(crate) fn check_before_blocking(meta: &LockMeta) {
    if !meta.tracked {
        return;
    }
    let top = HELD.with(|h| h.borrow().last().copied());
    let Some(top) = top else { return };
    if top.by_try {
        // Rank-exempt, but the ordering still lands in the global graph:
        // if another thread orders these locks the other way, the edge
        // that closes the cycle panics with both threads' provenance.
        record_edge((top.rank, top.name), (meta.rank, meta.name));
        return;
    }
    if top.leaf {
        panic!(
            "lock-audit: acquiring `{}` (rank {:#x}) while holding strict-leaf `{}` (rank {:#x}); held: {}",
            meta.name,
            meta.rank,
            top.name,
            top.rank,
            held_desc()
        );
    }
    if meta.rank <= top.rank {
        panic!(
            "lock-audit: rank inversion: acquiring `{}` (rank {:#x}) while holding `{}` (rank {:#x}); ranks must strictly ascend; held: {}",
            meta.name,
            meta.rank,
            top.name,
            top.rank,
            held_desc()
        );
    }
    record_edge((top.rank, top.name), (meta.rank, meta.name));
}

/// Pushes a successfully acquired lock onto the held stack. Returns the
/// token whose drop pops it. `by_try` acquisitions skip
/// [`check_before_blocking`] (they cannot deadlock on their own) but still
/// contribute to the stack so later blocking acquisitions see them.
pub(crate) fn push_acquired(meta: &LockMeta, by_try: bool) -> AuditHold {
    if !meta.tracked {
        return AuditHold { seq: None, _not_send: std::marker::PhantomData };
    }
    let seq = NEXT_SEQ.with(|s| {
        let mut s = s.borrow_mut();
        *s += 1;
        *s
    });
    HELD.with(|h| {
        h.borrow_mut().push(Held { rank: meta.rank, name: meta.name, leaf: meta.leaf, by_try, seq })
    });
    AuditHold { seq: Some(seq), _not_send: std::marker::PhantomData }
}

/// Snapshot of the current thread's held ranked locks, innermost last.
/// Exposed for tests.
pub fn held_locks() -> Vec<(u32, &'static str)> {
    HELD.with(|h| h.borrow().iter().map(|e| (e.rank, e.name)).collect())
}

fn held_desc() -> String {
    let mut s = String::from("[");
    HELD.with(|h| {
        for (i, e) in h.borrow().iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "`{}`({:#x})", e.name, e.rank);
        }
    });
    s.push(']');
    s
}

type Node = (u32, &'static str);

struct Edge {
    /// Held-stack + thread description captured the first time this edge
    /// was observed; reported when the edge participates in a cycle.
    provenance: String,
}

#[derive(Default)]
struct Graph {
    edges: HashMap<Node, HashMap<Node, Edge>>,
}

fn graph() -> &'static StdMutex<Graph> {
    static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| StdMutex::new(Graph::default()))
}

fn record_edge(from: Node, to: Node) {
    let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
    let out = g.edges.entry(from).or_default();
    if out.contains_key(&to) {
        return;
    }
    let thread = std::thread::current();
    let provenance =
        format!("held {} on thread `{}`", held_desc(), thread.name().unwrap_or("<unnamed>"));
    out.insert(to, Edge { provenance });
    // The graph was acyclic before this insertion, so any cycle must pass
    // through the new edge: search for a path `to -> ... -> from`.
    if let Some(mut path) = find_path(&g, to, from) {
        let mut msg = String::from("lock-audit: acquisition-order cycle detected:\n");
        path.insert(0, from); // from -> to -> ... -> from
        path.insert(1, to);
        for pair in path.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let prov = g
                .edges
                .get(&a)
                .and_then(|m| m.get(&b))
                .map(|e| e.provenance.as_str())
                .unwrap_or("<unknown>");
            let _ = writeln!(
                msg,
                "  `{}`({:#x}) -> `{}`({:#x})  first seen: {}",
                a.1, a.0, b.1, b.0, prov
            );
        }
        // Drop the bad edge so a caught panic does not wedge the graph for
        // every later acquisition in the process (e.g. #[should_panic]).
        if let Some(out) = g.edges.get_mut(&from) {
            out.remove(&to);
        }
        drop(g);
        panic!("{msg}");
    }
}

/// Depth-first search for a path from `start` to `goal`; returns the
/// intermediate nodes (excluding `start`, including `goal`) if found.
fn find_path(g: &Graph, start: Node, goal: Node) -> Option<Vec<Node>> {
    let mut stack = vec![start];
    let mut visited: Vec<Node> = Vec::new();
    let mut parent: HashMap<Node, Node> = HashMap::new();
    while let Some(n) = stack.pop() {
        if visited.contains(&n) {
            continue;
        }
        visited.push(n);
        if let Some(out) = g.edges.get(&n) {
            for next in out.keys() {
                if !visited.contains(next) {
                    parent.entry(*next).or_insert(n);
                    stack.push(*next);
                }
                if *next == goal {
                    let mut path = vec![goal];
                    let mut cur = n;
                    while cur != start {
                        path.push(cur);
                        cur = parent[&cur];
                    }
                    path.push(start);
                    path.reverse();
                    // path = start, ..., goal ; drop leading start
                    path.remove(0);
                    return Some(path);
                }
            }
        }
    }
    None
}
