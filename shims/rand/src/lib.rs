//! Offline shim for the [`rand`](https://crates.io/crates/rand) 0.8 API
//! subset this workspace uses: `RngCore`, `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng` (xoshiro256++ under the
//! hood — deterministic given a seed, which is all the simulations need).
//! See the workspace README's "Dependency policy" section.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Convenience methods layered on [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        standard_f64(self.next_u64()) < p
    }

    /// Samples a value from the standard distribution of `T`.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn standard_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full 128-bit domain: draw both words.
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    return wide as $t;
                }
                low.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
    )+};
}

impl_sample_uniform_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Uniform `u128` in `[0, span)` by rejection sampling (span > 0).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        // Rejection zone keeps the modulo unbiased.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span) as u128;
            }
        }
    }
    let wide = |rng: &mut R| ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let v = wide(rng);
        if v <= zone {
            return v % span;
        }
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + standard_f64(rng.next_u64()) * (high - low)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        low + standard_f64(rng.next_u64()) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types samplable from the standard distribution ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        standard_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        standard_f64(rng.next_u64()) as f32
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Seed material.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // splitmix64: the canonical way to stretch a u64 seed.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let b = z.to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the "small" RNG is the same engine in this shim.
    pub type SmallRng = StdRng;
}

pub mod prelude {
    //! Commonly used items.
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let i: i64 = rng.gen_range(1..5i64);
            assert!((1..5).contains(&i));
            let w: u128 = rng.gen_range(0..=5u128);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 gave {hits}/10000");
    }
}
