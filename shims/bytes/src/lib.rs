//! Offline shim for the [`bytes`](https://crates.io/crates/bytes) API subset
//! this workspace uses: `Bytes` (cheaply clonable shared buffer), `BytesMut`
//! (growable buffer), and the `Buf`/`BufMut` cursor traits. `Bytes` is backed
//! by an `Arc<[u8]>` plus an offset/length window, so `clone` and
//! `copy_to_bytes` are O(1) reference bumps exactly like the real crate. See
//! the workspace README's "Dependency policy" section.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Repr,
    start: usize,
    end: usize,
}

/// Backing storage: borrowed statics avoid allocation (and permit `const`
/// construction); everything else is a shared `Arc` window.
#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Repr {
    fn as_slice(&self) -> &[u8] {
        match self {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Bytes { data: Repr::Static(&[]), start: 0, end: 0 }
    }

    /// Creates `Bytes` from a static slice without copying.
    pub const fn from_static(slice: &'static [u8]) -> Self {
        Bytes { data: Repr::Static(slice), start: 0, end: slice.len() }
    }

    /// Creates `Bytes` by copying `slice`.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view of `self` for the given range (O(1), shares the
    /// backing allocation).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }

    /// Splits off and returns the bytes after `at`, leaving `self` with the
    /// first `at` bytes (both views share the allocation).
    pub fn split_off(&mut self, at: usize) -> Bytes {
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    /// Splits off and returns the first `at` bytes, advancing `self` past
    /// them (both views share the allocation).
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data: Repr::Shared(data), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        // The copy is deliberate: `self` may share its backing allocation.
        #[allow(clippy::unnecessary_to_owned)]
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self[..].iter()
    }
}

/// A growable, uniquely owned byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// Creates an empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { vec: Vec::with_capacity(cap) }
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Number of bytes the buffer can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    /// Splits off and returns the bytes after `at`, leaving `self` with the
    /// first `at` bytes.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut { vec: self.vec.split_off(at) }
    }

    /// Splits off and returns the first `at` bytes, advancing `self` past
    /// them.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let tail = self.vec.split_off(at);
        BytesMut { vec: std::mem::replace(&mut self.vec, tail) }
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.vec.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> Self {
        BytesMut { vec }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { vec: s.to_vec() }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.vec).fmt(f)
    }
}

/// Read cursor over a contiguous or windowed byte source.
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the source.
    fn remaining(&self) -> usize;
    /// The current contiguous chunk at the cursor.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes from the cursor into `dst` and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let mut off = 0;
        while off < dst.len() {
            let chunk = self.chunk();
            let n = chunk.len().min(dst.len() - off);
            dst[off..off + n].copy_from_slice(&chunk[..n]);
            off += n;
            self.advance(n);
        }
    }

    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16` and advances.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32` and advances.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64` and advances.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `u128` and advances.
    fn get_u128_le(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_le_bytes(b)
    }

    /// Reads a little-endian `i64` and advances.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Copies the next `len` bytes into a fresh [`Bytes`] and advances.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut v = vec![0u8; len];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        self.split_to(len)
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        self.vec.drain(..cnt);
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        // Must forward rather than use the default copying body: nested
        // decoders reborrow (`&mut &mut Bytes`), and only forwarding
        // preserves `Bytes`' O(1) window-split specialization.
        (**self).copy_to_bytes(len)
    }
}

/// Write cursor appending to a growable byte sink.
pub trait BufMut {
    /// Appends `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u128`.
    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_window_ops() {
        let mut b = Bytes::from(b"hello world".to_vec());
        assert_eq!(b.slice(0..5), Bytes::from_static(b"hello"));
        let tail = b.split_off(5);
        assert_eq!(b, Bytes::from_static(b"hello"));
        assert_eq!(tail, Bytes::from_static(b" world"));
    }

    #[test]
    fn buf_roundtrip() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u32_le(0xdead_beef);
        m.put_u64_le(42);
        m.put_slice(b"xy");
        let mut r: &[u8] = &m;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.copy_to_bytes(2), Bytes::from_static(b"xy"));
        assert!(!r.has_remaining());
    }

    #[test]
    fn bytes_advance_is_window_shift() {
        let mut b = Bytes::from(b"abcdef".to_vec());
        b.advance(2);
        assert_eq!(&b[..], b"cdef");
        let head = b.copy_to_bytes(2);
        assert_eq!(&head[..], b"cd");
        assert_eq!(&b[..], b"ef");
    }
}
