//! Quickstart: a CURP cluster in one process.
//!
//! Builds a simulated 3-way-replicated cluster (1 master + 3 backup/witness
//! servers), runs a handful of operations, and shows which path each took —
//! the whole point of CURP is that commutative updates complete in **1 RTT**
//! (fast path) while conflicting ones transparently fall back to 2 RTT.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use bytes::Bytes;
use curp::proto::op::Op;
use curp::sim::{run_sim, to_virtual_us, Mode, RamcloudParams, SimCluster};

fn b(s: &str) -> Bytes {
    Bytes::from(s.to_owned())
}

fn main() {
    run_sim(async {
        println!("building a CURP cluster (f = 3: 3 backups + 3 witnesses)...");
        let cluster = SimCluster::build(Mode::Curp, RamcloudParams::new(3)).await;
        let client = cluster.client(0).await;

        // Commutative updates: different keys, all 1 RTT.
        for (k, v) in [("tokyo", "13.9M"), ("delhi", "32.9M"), ("shanghai", "24.8M")] {
            let t0 = tokio::time::Instant::now();
            client.update(Op::Put { key: b(k), value: b(v) }).await.unwrap();
            println!("  put {k:<10} -> {:>6.1} virtual µs", to_virtual_us(t0.elapsed()));
        }

        // A conflicting update: same key twice, back to back. The second
        // write touches unsynced state, so the master syncs first (2 RTT).
        let t0 = tokio::time::Instant::now();
        client.update(Op::Put { key: b("tokyo"), value: b("14.0M") }).await.unwrap();
        println!("  put tokyo (conflict) -> {:>6.1} virtual µs", to_virtual_us(t0.elapsed()));

        // Reads go to the master (1 RTT).
        let r = client.read(Op::Get { key: b("tokyo") }).await.unwrap();
        println!("  get tokyo  -> {r:?}");

        // Typed operations work too (the Redis side of the paper).
        client.update(Op::Incr { key: b("visits"), delta: 1 }).await.unwrap();
        let r = client.update(Op::Incr { key: b("visits"), delta: 41 }).await.unwrap();
        println!("  incr visits x2 -> {r:?}");

        let fast = client.stats.fast_path.load(std::sync::atomic::Ordering::Relaxed);
        let synced = client.stats.synced_by_master.load(std::sync::atomic::Ordering::Relaxed);
        println!("\npath summary: {fast} ops in 1 RTT (fast path), {synced} ops in 2 RTT (synced)");
        println!("every completed op is durable on all 3 witnesses or all 3 backups.");
    });
}
