//! Consistent reads from backups (§A.1): 0 wide-area RTTs in geo-replication.
//!
//! Reading a backup naively can violate linearizability because CURP updates
//! complete before reaching the backups. The fix: probe a *witness* first —
//! if the key commutes with everything the witness holds, the backup is
//! guaranteed fresh for that key; otherwise fall back to the master.
//!
//! This demo builds a "geo" topology where the client is far from the master
//! but near one backup + witness pair, and shows both outcomes.
//!
//! ```sh
//! cargo run --example consistent_reads
//! ```

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use curp::proto::op::{Op, OpResult};
use curp::proto::types::ServerId;
use curp::sim::{run_sim, to_virtual_us, Mode, RamcloudParams, SimCluster};
use curp::transport::latency::Fixed;

fn b(s: &str) -> Bytes {
    Bytes::from(s.to_owned())
}

fn main() {
    run_sim(async {
        let mut params = RamcloudParams::new(3);
        params.batch_size = 10_000;
        params.sync_interval_ns = 300_000; // 300 µs background flush
        let cluster = SimCluster::build(Mode::Curp, params).await;

        // Make backup/witness server 2 "nearby" for client 0 (same region):
        // fast link in both directions, while the master stays far away.
        let client_id = ServerId(100);
        let near = ServerId(2);
        let fast = Arc::new(Fixed(Duration::from_millis(200))); // 0.2 virtual µs
        cluster.net.set_link_latency(client_id, near, fast.clone());
        cluster.net.set_link_latency(near, client_id, fast);

        let client = cluster.client(0).await;
        client.update(Op::Put { key: b("profile"), value: b("v1") }).await.unwrap();

        // Immediately after the 1-RTT update the backup is stale; the
        // witness probe detects the pending write and the client reads the
        // master instead (which syncs first), staying linearizable.
        let t0 = tokio::time::Instant::now();
        let r = client.read_nearby(Op::Get { key: b("profile") }, 0).await.unwrap();
        println!(
            "read #1 (update still pending) -> {:?} in {:.1} virtual µs (went to the master)",
            r,
            to_virtual_us(t0.elapsed())
        );
        assert_eq!(r, OpResult::Value(Some(b("v1"))));

        // Wait for the background sync + witness gc, then read again: the
        // probe passes and the nearby backup serves it — much faster.
        tokio::time::sleep(Duration::from_secs(1_000)).await; // 1 virtual ms
        let t0 = tokio::time::Instant::now();
        let r = client.read_nearby(Op::Get { key: b("profile") }, 0).await.unwrap();
        println!(
            "read #2 (synced + gc'd)        -> {:?} in {:.1} virtual µs (nearby witness + backup)",
            r,
            to_virtual_us(t0.elapsed())
        );
        assert_eq!(r, OpResult::Value(Some(b("v1"))));

        println!("\nboth reads linearizable; the second avoided the wide-area master entirely.");
    });
}
