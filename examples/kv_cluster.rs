//! A real CURP key-value cluster over TCP on localhost.
//!
//! Starts a coordinator, one master, three backup+witness servers and a
//! client — each on its own TCP port, talking through the length-prefixed
//! frame protocol — then measures real round-trip latencies for the 1-RTT
//! fast path.
//!
//! ```sh
//! cargo run --example kv_cluster
//! ```

use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use curp::core::client::{ClientConfig, CurpClient};
use curp::core::coordinator::{Coordinator, CoordinatorHandler};
use curp::core::master::MasterConfig;
use curp::core::server::{CurpServer, ServerHandler};
use curp::proto::cluster::HashRange;
use curp::proto::op::Op;
use curp::proto::types::ServerId;
use curp::transport::tcp::{TcpRouter, TcpServer};
use curp::witness::cache::CacheConfig;

const COORD: ServerId = ServerId(100);

#[tokio::main]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One router per process-role so each server dials as itself.
    let make_router = |self_id: ServerId| TcpRouter::new(self_id);

    // --- boot four CURP servers on ephemeral ports -------------------------
    let ids: Vec<ServerId> = (1..=4).map(ServerId).collect();
    let mut servers = Vec::new();
    let mut tcp_servers = Vec::new();
    let mut addrs = Vec::new();
    for &id in &ids {
        let server = CurpServer::new(id, CacheConfig::default());
        let tcp =
            TcpServer::bind("127.0.0.1:0".parse()?, Arc::new(ServerHandler(Arc::clone(&server))))
                .await?;
        println!("server {id} listening on {}", tcp.local_addr());
        addrs.push(tcp.local_addr());
        servers.push(server);
        tcp_servers.push(tcp);
    }

    // --- coordinator -------------------------------------------------------
    let coord_addrs = addrs.clone();
    let coord = Coordinator::new(
        Box::new(move |from| {
            let router = TcpRouter::new(from);
            for (i, &addr) in coord_addrs.iter().enumerate() {
                router.add_route(ServerId(i as u64 + 1), addr);
            }
            router.client()
        }),
        MasterConfig::default(),
        60_000,
    );
    for s in &servers {
        coord.register_server(Arc::clone(s));
    }
    let coord_tcp =
        TcpServer::bind("127.0.0.1:0".parse()?, Arc::new(CoordinatorHandler(Arc::clone(&coord))))
            .await?;
    println!("coordinator listening on {}", coord_tcp.local_addr());

    // Partition: master on server 1, backups+witnesses on 2..4.
    let backups: Vec<ServerId> = (2..=4).map(ServerId).collect();
    coord
        .create_partition(ServerId(1), backups.clone(), backups, HashRange::FULL)
        .await
        .map_err(std::io::Error::other)?;

    // --- client ------------------------------------------------------------
    let router = make_router(ServerId(999));
    for (i, &addr) in addrs.iter().enumerate() {
        router.add_route(ServerId(i as u64 + 1), addr);
    }
    router.add_route(COORD, coord_tcp.local_addr());
    let client = CurpClient::connect(router.client(), COORD, ClientConfig::default()).await?;

    // --- run a little workload over real sockets ---------------------------
    println!("\nwriting 1000 keys over TCP...");
    let t0 = Instant::now();
    for i in 0..1000u32 {
        client
            .update(Op::Put {
                key: Bytes::from(format!("key-{i}")),
                value: Bytes::from(format!("value-{i}")),
            })
            .await?;
    }
    let per_op = t0.elapsed() / 1000;
    println!("  mean write latency (loopback TCP, 3-way replicated): {per_op:?}");

    let r = client.read(Op::Get { key: Bytes::from("key-500") }).await?;
    println!("  read key-500 -> {r:?}");

    let fast = client.stats.fast_path.load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "  {fast}/1000 writes completed on the 1-RTT fast path \
         (master + 3 witness records in parallel)"
    );

    for tcp in tcp_servers {
        tcp.shutdown();
    }
    coord_tcp.shutdown();
    Ok(())
}
