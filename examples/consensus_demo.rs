//! The §A.2 consensus extension: CURP on a Raft-style replicated state
//! machine.
//!
//! Five replicas (f = 2), each embedding a witness. Commutative commands
//! complete in 1 RTT once recorded on a superquorum (f + ⌈f/2⌉ + 1 = 4) of
//! witnesses; then we kill the leader before it replicates and watch the new
//! leader recover the completed command from witness data alone.
//!
//! ```sh
//! cargo run --example consensus_demo
//! ```

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use curp::consensus::client::ConsensusClient;
use curp::consensus::replica::{Replica, ReplicaConfig, ReplicaHandler};
use curp::proto::op::{Op, OpResult};
use curp::proto::types::{ClientId, ServerId};
use curp::transport::MemNetwork;

fn b(s: &str) -> Bytes {
    Bytes::from(s.to_owned())
}

fn main() {
    let rt = tokio::runtime::Builder::new_current_thread()
        .enable_time()
        .start_paused(true)
        .build()
        .unwrap();
    rt.block_on(async {
        let net = MemNetwork::new(42);
        net.set_rpc_timeout(Duration::from_millis(50));
        let ids: Vec<ServerId> = (1..=5).map(ServerId).collect();
        let mut replicas = Vec::new();
        for &id in &ids {
            let peers: Vec<ServerId> = ids.iter().copied().filter(|&p| p != id).collect();
            let replica = Replica::spawn(id, peers, ReplicaConfig::default(), net.client(id));
            net.add_simple_server(id, Arc::new(ReplicaHandler(Arc::clone(&replica))));
            replicas.push(replica);
        }

        // Wait for a leader.
        let leader = loop {
            tokio::time::sleep(Duration::from_millis(50)).await;
            if let Some(r) = replicas.iter().find(|r| r.status().1) {
                break r.id();
            }
        };
        println!("leader elected: {leader} (5 replicas, f = 2, superquorum = 4)");

        let client = ConsensusClient::new(net.client(ServerId(900)), ids.clone(), ClientId(1));
        let r = client.update(Op::Incr { key: b("sequence"), delta: 1 }).await.unwrap();
        let fast = client.stats.fast_path.load(std::sync::atomic::Ordering::Relaxed);
        println!("incr -> {r:?} ({})", if fast > 0 { "1-RTT fast path" } else { "commit path" });

        // Kill the leader before its next heartbeat can replicate the entry.
        println!("\n*** leader {leader} crashes before replicating ***\n");
        net.crash(leader);
        for &other in &ids {
            if other != leader {
                net.partition(leader, other);
            }
        }
        net.partition(leader, ServerId(900));
        net.partition(leader, ServerId(901));

        // A new leader takes over and recovers the command from witnesses.
        loop {
            tokio::time::sleep(Duration::from_millis(50)).await;
            if replicas.iter().any(|r| r.id() != leader && r.status().1) {
                break;
            }
        }
        let new_leader = replicas.iter().find(|r| r.id() != leader && r.status().1).unwrap();
        println!("new leader: {} — recovering from witness superquorum...", new_leader.id());

        let client2 = ConsensusClient::new(net.client(ServerId(901)), ids.clone(), ClientId(2));
        let r = client2.read(Op::Get { key: b("sequence") }).await.unwrap();
        println!("read after failover -> {r:?}");
        assert_eq!(r, OpResult::Value(Some(b("1"))), "completed command must survive");

        let r = client2.update(Op::Incr { key: b("sequence"), delta: 1 }).await.unwrap();
        println!("next incr -> {r:?} (exactly-once preserved)");
        assert_eq!(r, OpResult::Counter(2));
        println!("\nthe 1-RTT completed command survived the leader crash.");
    });
}
