//! Crash recovery demo (§3.3, §4.6): a fast-path write survives a master
//! crash even though it never reached the backups.
//!
//! The write completes in 1 RTT — durable only on the three witnesses. We
//! then kill the master before it can sync, run the paper's two-step
//! recovery (restore from a backup, replay from a witness), and show the
//! write intact, with RIFL filtering the duplicate of an already-replicated
//! operation.
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use bytes::Bytes;
use curp::proto::op::{Op, OpResult};
use curp::proto::types::ServerId;
use curp::sim::{run_sim, Mode, RamcloudParams, SimCluster};

fn b(s: &str) -> Bytes {
    Bytes::from(s.to_owned())
}

fn main() {
    run_sim(async {
        // Lazy syncing so we can crash the master with unsynced state.
        let mut params = RamcloudParams::new(3);
        params.batch_size = 10_000;
        params.sync_interval_ns = u64::MAX / 2048; // effectively never
        let cluster = SimCluster::build(Mode::Curp, params).await;
        let client = cluster.client(0).await;

        // This increment completes on the fast path: master + witnesses.
        let r = client.update(Op::Incr { key: b("balance"), delta: 100 }).await.unwrap();
        println!("deposit completed (1 RTT): balance = {r:?}");
        let backup = cluster.servers[1].backup();
        assert_eq!(backup.next_seq(cluster.master_id), None);
        println!("backups have seen NOTHING (the write is only on witnesses)");

        // Kill the master.
        println!("\n*** master crashes ***\n");
        cluster.net.crash(ServerId(1));
        cluster.servers[0].seal_master();

        // Coordinator-driven recovery: fence the epoch, restore from a
        // backup, replay from a witness, reinstall on all backups.
        let spare = cluster.servers.last().unwrap().id();
        let new_master =
            cluster.coord.recover_master(cluster.master_id, spare).await.expect("recovery failed");
        println!("recovered partition onto {spare} as {new_master:?}");

        // The client transparently refreshes its config and reads the value
        // the witnesses preserved.
        let r = client.read(Op::Get { key: b("balance") }).await.unwrap();
        println!("after recovery: balance = {r:?}");
        assert_eq!(r, OpResult::Value(Some(b("100"))));

        // Exactly-once: re-sending the *same* RPC (a client retry racing the
        // crash) returns the original result instead of double-depositing.
        let r = client.update(Op::Incr { key: b("balance"), delta: 50 }).await.unwrap();
        println!("second deposit (new rpc): balance = {r:?}");
        assert_eq!(r, OpResult::Counter(150));

        println!("\nno committed state was lost; no operation ran twice.");
    });
}
