//! Making a Redis-style cache durable with CURP (§5.4) — with a *real*
//! append-only file on disk.
//!
//! Plain Redis is either fast (no fsync — data lost on crash) or durable
//! (fsync per write — 10-100× slower). CURP gets both: operations are
//! recorded on witnesses (fast, in parallel with execution) while the AOF is
//! written and fsynced in the background.
//!
//! This example exercises the [`Aof`](curp::storage::Aof) substrate
//! directly: writes go to a store + AOF with a manual fsync policy, a
//! "crash" tears the last record in half, and the reload recovers every
//! synced entry while the torn tail is discarded — exactly Redis'
//! `aof-load-truncated` behaviour.
//!
//! ```sh
//! cargo run --example redis_durable
//! ```

use std::time::Instant;

use bytes::Bytes;
use curp::proto::message::LogEntry;
use curp::proto::op::{Op, OpResult};
use curp::proto::types::{ClientId, RpcId};
use curp::storage::{Aof, FsyncPolicy, Store};

fn entry(seq: u64, op: Op, result: OpResult) -> LogEntry {
    LogEntry { seq, rpc_id: Some(RpcId::new(ClientId(1), seq + 1)), op, result }
}

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("curp-redis-durable-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("appendonly.aof");
    let _ = std::fs::remove_file(&path);

    // --- compare fsync policies --------------------------------------------
    let n = 2_000u64;
    for (policy, label) in [
        (FsyncPolicy::Always, "fsync always  (durable Redis)"),
        (FsyncPolicy::Manual, "batched fsync (CURP-style)  "),
    ] {
        let p = dir.join(format!("bench-{label:.5}.aof"));
        let _ = std::fs::remove_file(&p);
        let mut store = Store::new();
        let mut aof = Aof::open(&p, policy)?;
        let t0 = Instant::now();
        for i in 0..n {
            let op = Op::Put {
                key: Bytes::from(format!("key-{i}")),
                value: Bytes::from(vec![b'x'; 100]),
            };
            let result = store.execute(&op);
            aof.append(&entry(i, op, result))?;
            if policy == FsyncPolicy::Manual && i % 50 == 49 {
                aof.sync()?; // batch of 50, like the master's sync batching
            }
        }
        aof.sync()?;
        let per_op = t0.elapsed() / n as u32;
        println!("{label}: {per_op:?} per write ({n} writes)");
        std::fs::remove_file(&p)?;
    }

    // --- crash recovery with a torn tail ------------------------------------
    println!("\nwriting 100 entries, then simulating a crash mid-append...");
    let mut store = Store::new();
    {
        let mut aof = Aof::open(&path, FsyncPolicy::Always)?;
        for i in 0..100 {
            let op = Op::Incr { key: Bytes::from("counter"), delta: 1 };
            let result = store.execute(&op);
            aof.append(&entry(i, op, result))?;
        }
    }
    // Tear the last record (crash mid-write).
    let len = std::fs::metadata(&path)?.len();
    let f = std::fs::OpenOptions::new().write(true).open(&path)?;
    f.set_len(len - 11)?;
    drop(f);

    // Reload: replay every complete entry into a fresh store.
    let entries = Aof::load(&path)?;
    let mut recovered = Store::new();
    for e in &entries {
        let r = recovered.execute(&e.op);
        assert_eq!(r, e.result, "deterministic replay");
    }
    let r = recovered.execute(&Op::Get { key: Bytes::from("counter") });
    println!(
        "recovered {} of 100 entries; counter = {:?} (torn 100th entry dropped)",
        entries.len(),
        r
    );
    assert_eq!(r, OpResult::Value(Some(Bytes::from("99"))));

    println!("\nwith CURP, that torn entry would still be safe: its record lives");
    println!("on the witnesses and is replayed during recovery (see crash_recovery).");
    std::fs::remove_file(&path)?;
    Ok(())
}
