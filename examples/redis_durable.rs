//! Making a Redis-style cache durable with CURP (§5.4) — on the **real
//! wired path**: a live cluster whose backups write-ahead-log every sync
//! round to on-disk append-only files and whose witnesses journal every
//! record before acknowledging.
//!
//! Plain Redis is either fast (no fsync — data lost on crash) or durable
//! (fsync per write — 10-100× slower). CURP gets both: the client completes
//! each update in 1 RTT once the witnesses have *journaled* it, while the
//! AOF fsync happens in the background, batched per sync round (§C.2).
//!
//! The demo runs a durable cluster, completes a workload, then cuts power
//! to **every** server at once and cold-restarts the cluster from nothing
//! but the on-disk AOFs and witness journals — no acknowledged write is
//! lost, and exactly-once semantics survive the outage. A short
//! fsync-policy comparison on the raw [`Aof`](curp::storage::Aof) substrate
//! shows why the batching matters.
//!
//! ```sh
//! cargo run --example redis_durable
//! ```

use std::time::Instant;

use bytes::Bytes;
use curp::proto::message::LogEntry;
use curp::proto::op::{Op, OpResult};
use curp::proto::types::{ClientId, RpcId};
use curp::sim::tempdir::TempDir;
use curp::sim::{run_sim, Mode, RamcloudParams, SimCluster};
use curp::storage::{Aof, FsyncPolicy, Store};

fn b(s: &str) -> Bytes {
    Bytes::from(s.to_owned())
}

/// The §C.2 comparison on the raw substrate: per-write fsync (durable
/// Redis) vs one fsync per 50-op batch (what the cluster's backups do).
fn fsync_policy_comparison(dir: &std::path::Path) -> std::io::Result<()> {
    let entry = |seq: u64, op: Op, result: OpResult| LogEntry {
        seq,
        rpc_id: Some(RpcId::new(ClientId(1), seq + 1)),
        op,
        result,
    };
    let n = 2_000u64;
    for (policy, label) in [
        (FsyncPolicy::Always, "fsync always  (durable Redis)"),
        (FsyncPolicy::Manual, "batched fsync (CURP backups) "),
    ] {
        let p = dir.join(format!("bench-{label:.5}.aof"));
        let mut store = Store::new();
        let mut aof = Aof::open(&p, policy)?;
        let t0 = Instant::now();
        for i in 0..n {
            let op = Op::Put {
                key: Bytes::from(format!("key-{i}")),
                value: Bytes::from(vec![b'x'; 100]),
            };
            let result = store.execute(&op);
            aof.append(&entry(i, op, result))?;
            if policy == FsyncPolicy::Manual && i % 50 == 49 {
                aof.sync()?; // one fsync per 50-op round, like the backups
            }
        }
        aof.sync()?;
        println!("  {label}: {:?} per write ({n} writes)", t0.elapsed() / n as u32);
        std::fs::remove_file(&p)?;
    }
    Ok(())
}

fn main() -> std::io::Result<()> {
    let dir = TempDir::new("curp-redis-durable-example")?;

    println!("fsync policies on the raw AOF substrate:");
    fsync_policy_comparison(dir.path())?;

    run_sim(async move {
        // The wired path: every server persists — backups keep per-master
        // AOFs (FsyncPolicy::Manual, one write+fsync per sync round),
        // witnesses journal each record before the ack.
        let mut cluster =
            SimCluster::build_durable(Mode::Curp, RamcloudParams::new(3), 1, dir.path()).await;
        let client = cluster.client(0).await;

        println!("\nrunning a workload against the durable cluster...");
        for i in 0..60 {
            let r = client
                .update(Op::Incr { key: b("balance"), delta: 1 })
                .await
                .expect("update failed");
            if i == 59 {
                println!("60 deposits acknowledged; last result = {r:?}");
            }
        }
        client.update(Op::Put { key: b("owner"), value: b("ada") }).await.expect("put failed");
        let stats = &client.stats;
        println!(
            "client paths: {} fast (1 RTT, witness-journaled), {} master-synced (AOF-fsynced)",
            stats.fast_path.load(std::sync::atomic::Ordering::Relaxed),
            stats.synced_by_master.load(std::sync::atomic::Ordering::Relaxed),
        );

        println!("\n*** power loss: every server dies at once ***");
        let new_masters = cluster.power_loss_restart().await.expect("cold restart failed");
        println!(
            "cold-restarted from on-disk AOFs + witness journals; new master: {:?}",
            new_masters[0]
        );

        let balance = client.read(Op::Get { key: b("balance") }).await.expect("read failed");
        let owner = client.read(Op::Get { key: b("owner") }).await.expect("read failed");
        println!("after restart: balance = {balance:?}, owner = {owner:?}");
        assert_eq!(balance, OpResult::Value(Some(b("60"))));
        assert_eq!(owner, OpResult::Value(Some(b("ada"))));

        // Exactly-once survived the outage: the next deposit lands on 61,
        // it does not replay or double-apply anything.
        let r = client
            .update(Op::Incr { key: b("balance"), delta: 1 })
            .await
            .expect("post-restart update failed");
        assert_eq!(r, OpResult::Counter(61));
        println!("post-restart deposit: balance = {r:?}");
        println!("\nno acknowledged write was lost; no operation ran twice.");
    });
    Ok(())
}
